(** The engine-agnostic substrate of the abstract machine that executes
    LIR — our stand-in for the x86-64 core running DFG/FTL-generated code.

    Execution itself lives in the engines ([Decoded], the reference
    interpreter over pre-decoded LIR, and [Threaded], the closure-threaded
    compiler — see [Engine] for selection).  This module owns everything
    both engines share, which is exactly the simulated-metric contract:
    - counting dynamic instructions, classified NoFTL / NoTM / TMUnopt /
      TMOpt exactly as the paper's Figures 8/9 do (TMOpt = transaction-aware
      code inside its own transaction; TMUnopt = a callee executing inside
      someone else's transaction);
    - counting executed checks by kind (Figure 3);
    - charging the cycle model (Figures 10/11);
    - executing transactional semantics: Tx_begin checkpoints the live
      registers (like XBegin), speculative writes are journaled via the heap
      hooks, and an abort rolls the heap back and resumes the Baseline tier
      at the region entry — the control flow of paper Figure 5(b);
    - performing OSR exits: a failing Deopt check materializes its stack map
      into a Baseline frame and the rest of the function runs there.

    Whatever the engine, the machine executes the pre-decoded form of each
    compiled function ([Nomap_lir.Decode]): per-block instruction arrays
    instead of id lists, phi inputs resolved to per-edge copy tables, call
    arguments as arrays, and per-instruction costs precomputed — none of
    which changes any simulated metric (guarded by the counter-determinism
    test, and by the fuzzer's engine axis across decoded × threaded). *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module D = Nomap_lir.Decode
module Htm = Nomap_htm.Htm
module Agent = Nomap_shared.Agent
module Footprint = Nomap_cache.Footprint
module Specialize = Nomap_tiers.Specialize
module Hot = Nomap_util.Hot
module Prof = Nomap_runtime.Prof

type tier = Dfg | Ftl

exception Deopt_exit of int * (int * Value.t) list  (** resume pc, register values *)

type env = {
  instance : Instance.t;
  counters : Counters.t;
  htm_mode : Htm.mode;  (** hardware a Tx_begin targets *)
  sof_enabled : bool;  (** Sticky Overflow Flag hardware present *)
  capacity_scale : int;  (** HTM capacity scaling (matches workload scaling) *)
  tx_watchdog : int;  (** max LIR instrs per transaction before forced abort *)
  host_ic : bool;
      (** enable per-site host inline caches (host memoization only — no
          simulated counter depends on this; the fuzzer's ic axis checks) *)
  stm_fallback : bool;
      (** hybrid RTM+STM: a capacity overflow upgrades the transaction to a
          modeled software transaction instead of aborting (DESIGN.md §15) *)
  stm_factor : float;  (** STM per-access slowdown factor (Config.stm_factor) *)
  call : fid:int -> this:Value.t -> args:Value.t list -> Value.t;
  deopt_resume : fid:int -> resume_pc:int -> values:(int * Value.t) list -> Value.t;
  mutable tx : Htm.tx option;
  mutable shared_agent : Agent.t option;
      (** this VM's agent on a shared segment; transactions publish their
          segment footprints through it so remote agents can conflict
          (DESIGN.md §16).  Set by the VM right after [create_env]. *)
  mutable ghost_depth : int;  (** Base config: zero-cost region markers *)
  mutable ghost_owner : int;
  mutable next_frame : int;
  mutable on_abort : fid:int -> Htm.abort_reason -> unit;
      (** VM adaptation hook: capacity aborts shrink/remove transactions *)
}

let create_env ~instance ~counters ~htm_mode ~sof_enabled ?(capacity_scale = 1)
    ?(tx_watchdog = 30_000_000) ?(host_ic = true) ?(stm_fallback = false)
    ?(stm_factor = 4.0) ~call ~deopt_resume () =
  {
    instance;
    counters;
    htm_mode;
    sof_enabled;
    capacity_scale;
    tx_watchdog;
    host_ic;
    stm_fallback;
    stm_factor;
    call;
    deopt_resume;
    tx = None;
    shared_agent = None;
    ghost_depth = 0;
    ghost_owner = -1;
    next_frame = 0;
    on_abort = (fun ~fid:_ _ -> ());
  }

(* [match] rather than [<> None]: the generic structural compare is a C
   call, and this runs once per charged instruction. *)
let[@inline] in_region env =
  match env.tx with Some _ -> true | None -> env.ghost_depth > 0

let category env frame =
  match env.tx with
  | Some tx ->
    if frame = tx.Htm.owner_frame then Counters.Tm_opt else Counters.Tm_unopt
  | None ->
    if env.ghost_depth > 0 then
      if frame = env.ghost_owner then Counters.Tm_opt else Counters.Tm_unopt
    else Counters.No_tm

(* The cycle charges below mutate [Counters.f] directly rather than going
   through [Counters.add_cycles]: the cross-module call boxes its float
   argument on every invocation, and these run once per charged
   instruction.  The accumulation order and values are identical. *)
let charge_ftl env ~frame ~tier n =
  if n > 0 then begin
    Counters.add_instrs env.counters (category env frame) n;
    let cpi = match tier with Dfg -> Timing.cpi_dfg | Ftl -> Timing.cpi_ftl in
    let c = float_of_int n *. cpi in
    let f = env.counters.Counters.f in
    f.Counters.cycles <- f.Counters.cycles +. c;
    if in_region env then f.Counters.tx_cycles <- f.Counters.tx_cycles +. c
  end

let charge_runtime env n =
  if n > 0 then begin
    Counters.add_instrs env.counters Counters.No_ftl n;
    let c = float_of_int n *. Timing.cpi_runtime in
    let f = env.counters.Counters.f in
    f.Counters.cycles <- f.Counters.cycles +. c;
    if in_region env then f.Counters.tx_cycles <- f.Counters.tx_cycles +. c
  end

(** RTM transactional reads are ~20% slower (paper §VI-B).  The HTM load
    hook counts every in-transaction read in [tx.reads]; the penalty is
    charged in one multiply when the transaction finishes (commit or abort)
    — cycle-identical to per-read charging, but the hot hook stays a bare
    increment. *)
let charge_rtm_reads env (tx : Htm.tx) =
  if tx.Htm.mode = Htm.Rtm && tx.Htm.reads > 0 then
    Counters.add_cycles env.counters ~in_tx:true
      (float_of_int tx.Htm.reads *. Timing.rtm_read_penalty)

(** Overhead of a hybrid transaction that fell back to the modeled software
    transaction (DESIGN.md §15), computed in ONE fixed-order accumulation at
    the transaction's single finish point (the outermost [Tx_end], or
    [handle_abort]).  Charging here instead of inside the heap hooks keeps
    the floating-point accumulation order independent of how an engine
    interleaves its instruction charges (decoded charges per instruction,
    threaded batches per segment), which the bit-exact cross-engine counter
    contract requires.  The terms, in order:
    - the hardware abort that triggered the fallback, plus the RTM read
      latency the doomed prefix had already paid;
    - STM setup (descriptor + log allocation);
    - the prefix re-executed under STM at full instrumented access cost
      ([stm_factor] × the base access cost);
    - the suffix's instrumentation overhead — those accesses already paid
      the plain access cost via the engine's normal charging, so the STM
      adds ([stm_factor] − 1) × base on top;
    - commit write-back/validation (commit only).
    Fixed per-tx costs scale with [capacity_scale] like XBegin/XEnd do. *)
let stm_overhead_cycles env (tx : Htm.tx) ~committed =
  let scale = float_of_int env.capacity_scale in
  let pr = float_of_int tx.Htm.stm_prefix_reads
  and pw = float_of_int tx.Htm.stm_prefix_writes in
  let ar = float_of_int tx.Htm.reads and aw = float_of_int tx.Htm.writes in
  Timing.abort_cycles
  +. (pr *. Timing.rtm_read_penalty)
  +. (Timing.stm_begin_cycles /. scale)
  +. ((pr +. pw) *. env.stm_factor *. Timing.stm_access_cycles)
  +. (((ar -. pr) +. (aw -. pw)) *. (env.stm_factor -. 1.0) *. Timing.stm_access_cycles)
  +. (if committed then Timing.stm_commit_cycles /. scale else 0.0)

(** Commit-time (or abort-time) bookkeeping for a fallen-back transaction:
    the averted capacity abort was already recorded (reason + [tx_aborts])
    by the fallback callback at the overflow point. *)
let charge_stm_finish env (tx : Htm.tx) ~committed =
  let c = env.counters in
  if committed then c.Counters.stm_commits <- c.Counters.stm_commits + 1
  else c.Counters.stm_aborts <- c.Counters.stm_aborts + 1;
  c.Counters.stm_reads <- c.Counters.stm_reads + tx.Htm.reads;
  c.Counters.stm_writes <- c.Counters.stm_writes + tx.Htm.writes;
  let over = stm_overhead_cycles env tx ~committed in
  (* An aborted software transaction's overhead lands outside tx time, like
     the hardware abort penalty does. *)
  Counters.add_cycles c ~in_tx:committed over;
  c.Counters.f.Counters.stm_cycles <- c.Counters.f.Counters.stm_cycles +. over

(* ------------------------------------------------------------------ *)
(* Cost tables (simulated machine instructions per LIR instruction). *)

let base_cost = function
  | L.Nop | L.Phi _ | L.Param _ | L.Const _ -> 0
  | L.Iadd _ | L.Isub _ | L.Imul _ | L.Ineg _ | L.Iadd_wrap _ | L.Isub_wrap _ -> 1
  | L.Fadd _ | L.Fsub _ | L.Fmul _ | L.Fneg _ -> 1
  | L.Fdiv _ -> 4
  | L.Fmod _ -> 8
  | L.Band _ | L.Bor _ | L.Bxor _ | L.Bnot _ | L.Shl _ | L.Shr _ | L.Ushr _ -> 1
  | L.Cmp _ | L.Not _ -> 1
  | L.Load_slot _ | L.Load_elem _ | L.Load_char_code _ -> 3
  | L.Store_slot _ | L.Store_elem _ -> 3
  | L.Store_transition _ -> 5  (* slot store + shape-word update *)
  | L.Load_length _ | L.Str_length _ -> 2
  | L.Load_global _ | L.Store_global _ -> 2
  | L.Check_shape _ | L.Check_bounds _ | L.Check_str_bounds _ | L.Check_not_hole _ -> 3
  | L.Check_int _ | L.Check_number _ | L.Check_string _ | L.Check_array _
  | L.Check_fun_eq _ | L.Check_overflow _ | L.Check_cond _ -> 2
  | L.Call_func _ | L.Call_method _ -> 6
  | L.Ctor_call _ -> 22
  | L.Alloc_object | L.Alloc_array _ -> 15
  | L.Intrinsic _ -> 0 (* charged separately *)
  | L.Call_runtime _ -> 2 (* the call itself; body charged as runtime *)
  | L.Tx_begin _ | L.Tx_end -> 1

(** (FTL instructions, NoFTL runtime instructions) for a math intrinsic:
    cheap ones are inlined by the backend; transcendentals call libm. *)
let intrinsic_cost = function
  | Intrinsics.Math_sqrt -> (3, 0)
  | Intrinsics.Math_abs | Intrinsics.Math_floor | Intrinsics.Math_ceil
  | Intrinsics.Math_round | Intrinsics.Math_min | Intrinsics.Math_max -> (2, 0)
  | Intrinsics.Global_is_nan -> (2, 0)
  | Intrinsics.Math_random -> (1, 12)
  | _ -> (1, 40)

(* ------------------------------------------------------------------ *)

let wrap_int32 = Ops.wrap_int32

(* [@inline] matters: both are called with the result feeding a local
   int/float context, so inlining lets the compiler keep the common Int/Num
   cases unboxed instead of boxing a float return per call. *)
let[@inline] as_int = function Value.Int i -> i | v -> Value.to_int32 v

let[@inline] as_num = function
  | Value.Int i -> float_of_int i
  | Value.Num f -> f
  | v -> Value.to_number v

(* Robust coercions: after NoMap removes checks inside a doomed transaction,
   garbage values may flow; hardware would compute garbage and abort later,
   so we coerce benignly instead of crashing the simulator. *)
let as_arr = function Value.Arr a -> Some a | _ -> None
let as_obj = function Value.Obj o -> Some o | _ -> None

(* ------------------------------------------------------------------ *)
(* Hot-path helpers, hoisted to the top level so executing a function
   allocates no closures per instruction (they used to be rebuilt on every
   call).  All take the per-activation state they touch explicitly. *)

let materialize (values : Value.t array) live =
  List.map (fun (r, v) -> (r, Hot.get values v)) live

(* A failing check: Deopt outside any real transaction OSR-exits; inside a
   transaction any failure is an abort (Deopt there is irrevocable).  An
   Abort exit with no live transaction is only possible if a pass
   mis-converted; treat it as a plain deopt to stay safe. *)
let check_fail env (values : Value.t array) (e : L.exit) kind =
  match env.tx with
  | Some _ -> raise (Htm.Abort (Htm.Check_failed kind))
  | None -> raise (Deopt_exit (e.L.smp.L.resume_pc, materialize values e.L.smp.L.live))

let tx_tick env =
  match env.tx with
  | Some tx ->
    tx.Htm.instr_count <- tx.Htm.instr_count + 1;
    if tx.Htm.instr_count > env.tx_watchdog then raise (Htm.Abort Htm.Watchdog)
  | None -> ()

let int_result env (overflowed : bool array) id raw =
  if Value.fits_int32 raw then Value.int_ raw
  else begin
    Hot.set overflowed id true;
    (match env.tx with Some tx when env.sof_enabled -> tx.Htm.sof <- true | _ -> ());
    Value.int_ (wrap_int32 raw)
  end

(** Build a call's argument list from pre-resolved value ids. *)
let arg_values (values : Value.t array) (ids : int array) =
  let rec go i acc =
    if i < 0 then acc else go (i - 1) (Hot.get values (Hot.get ids i) :: acc)
  in
  go (Array.length ids - 1) []

(** Known-arity intrinsic evaluation: skips building the argument list for
    the 0/1/2-arg calls that dominate ([Intrinsics.eval0/1/2] replicate
    [eval] exactly). *)
let eval_intrinsic heap intr (recv : Value.t) (ids : int array) (values : Value.t array) =
  try
    match Array.length ids with
    | 0 -> Intrinsics.eval0 heap intr recv
    | 1 -> Intrinsics.eval1 heap intr recv (Hot.get values (Hot.get ids 0))
    | 2 ->
      Intrinsics.eval2 heap intr recv
        (Hot.get values (Hot.get ids 0))
        (Hot.get values (Hot.get ids 1))
    | _ -> Intrinsics.eval heap intr recv (arg_values values ids)
  with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m)

(* --- host inline-cache probes (see Decode.ic / DESIGN.md §14) ---------- *)

(** The site's interned symbol.  Get-sites must not cache a miss: a name can
    be interned later (by the first store), at which point -1 would be
    stale.  [intern_on_miss] distinguishes set-sites (which intern, exactly
    as the generic path does) from get-sites (which only look up). *)
let ic_sym heap (c : D.ic) name ~intern_on_miss =
  if c.D.ic_sym >= 0 then c.D.ic_sym
  else begin
    let s =
      if intern_on_miss then Shape.intern heap.Heap.shapes name
      else Shape.find_sym heap.Heap.shapes name
    in
    if s >= 0 then c.D.ic_sym <- s;
    s
  end

(** Resolve a property slot through the cache: hit = one int compare.  On a
    miss, consult the shape's slot table and refill (monomorphic,
    last-shape-wins).  Caching a -1 slot is sound: shapes are immutable, so
    a given shape id lacks the symbol forever. *)
let ic_slot (c : D.ic) (o : Value.obj) sym =
  if sym >= 0 && c.D.ic_shape = o.Value.shape.Shape.id then c.D.ic_slot
  else begin
    let slot = Shape.slot_of o.Value.shape sym in
    if sym >= 0 then begin
      c.D.ic_shape <- o.Value.shape.Shape.id;
      c.D.ic_slot <- slot
    end;
    slot
  end

(** Cached property read: identical hooks to [Heap.get_prop] (one shape-word
    load, then the slot load on presence), minus the host-side hashing. *)
let ic_get_prop env heap (c : D.ic option) (o : Value.obj) name =
  match c with
  | Some c when env.host_ic ->
    Heap.get_prop_slot heap o (ic_slot c o (ic_sym heap c name ~intern_on_miss:false))
  | _ -> Heap.get_prop heap o name

(** Cached property write.  Three cases, each replicating the generic
    sequence bit-for-bit:
    - slot hit: shape-word load + slot store ([Heap.set_prop_sym]'s
      existing-property path);
    - transition hit ([ic_target] caches the child shape the source shape
      transitions to — sound because shape transitions are cached and
      deterministic): shape-word load + [Heap.transition_store];
    - miss: the generic path, then refill keyed on the *pre-store* shape. *)
let ic_set_prop env heap (c : D.ic option) (o : Value.obj) name v =
  match c with
  | Some c when env.host_ic -> (
    let sym = ic_sym heap c name ~intern_on_miss:true in
    let sid = o.Value.shape.Shape.id in
    if c.D.ic_shape = sid then begin
      if c.D.ic_slot >= 0 then begin
        Heap.note_load heap o.Value.oaddr Heap.word_bytes;
        Heap.store_slot heap o c.D.ic_slot v
      end
      else
        match c.D.ic_target with
        | Some tgt ->
          Heap.note_load heap o.Value.oaddr Heap.word_bytes;
          Heap.transition_store heap o tgt (tgt.Shape.prop_count - 1) v
        | None -> Heap.set_prop_sym heap o sym v
    end
    else begin
      let slot = Shape.slot_of o.Value.shape sym in
      Heap.set_prop_sym heap o sym v;
      c.D.ic_shape <- sid;
      if slot >= 0 then begin
        c.D.ic_slot <- slot;
        c.D.ic_target <- None
      end
      else begin
        c.D.ic_slot <- -1;
        c.D.ic_target <- Some o.Value.shape
      end
    end)
  | _ -> Heap.set_prop heap o name v

(** Cached transition resolution for [Store_transition] sites: a hit skips
    re-interning the name and the transition-table probe.  The cached target
    is exactly what [Shape.transition] would return for that source shape
    (transitions are memoized per shape), so the resulting shape tree and id
    sequence are identical either way. *)
let ic_transition env heap (c : D.ic option) (obj : Value.obj) name =
  match c with
  | Some c when env.host_ic ->
    if c.D.ic_shape = obj.Value.shape.Shape.id then (
      match c.D.ic_target with
      | Some t -> t
      | None -> Shape.transition heap.Heap.shapes obj.Value.shape name)
    else begin
      let t = Shape.transition heap.Heap.shapes obj.Value.shape name in
      c.D.ic_shape <- obj.Value.shape.Shape.id;
      c.D.ic_target <- Some t;
      t
    end
  | _ -> Shape.transition heap.Heap.shapes obj.Value.shape name

(* --- NOMAP_PROF slots (one per runtime-helper family) ------------------ *)

let prof_binop = Prof.make "rt_binop"
let prof_unop = Prof.make "rt_unop"
let prof_get_prop = Prof.make "rt_get_prop"
let prof_set_prop = Prof.make "rt_set_prop"
let prof_get_elem = Prof.make "rt_get_elem"
let prof_set_elem = Prof.make "rt_set_elem"
let prof_get_length = Prof.make "rt_get_length"
let prof_method = Prof.make "rt_method"
let prof_intrinsic = Prof.make "rt_intrinsic"

let prof_slot_of = function
  | L.Rt_binop _ -> prof_binop
  | L.Rt_unop _ -> prof_unop
  | L.Rt_get_prop _ -> prof_get_prop
  | L.Rt_set_prop _ -> prof_set_prop
  | L.Rt_get_elem -> prof_get_elem
  | L.Rt_set_elem -> prof_set_elem
  | L.Rt_get_length -> prof_get_length
  | L.Rt_method _ -> prof_method
  | L.Rt_intrinsic _ -> prof_intrinsic

(** Generic runtime calls (the NoFTL slow paths).  Each branch charges its
    runtime cost (same table as always: binop 30, unop 16, get_prop 35,
    set_prop 40, get_elem 30, set_elem 34, get_length 16, method 44,
    intrinsic 6 + static + dynamic) before executing, then reads its
    operands straight out of the value array — no [List.nth].  [ic] is the
    call site's host inline cache (property/method sites only); it changes
    no hook sequence and no charge. *)
let exec_runtime_uninstrumented env ~(ic : D.ic option) rt (recv : Value.t)
    (ids : int array) (values : Value.t array) : Value.t =
  let heap = env.instance.Instance.heap in
  let arg i = Hot.get values (Hot.get ids i) in
  match rt with
  | L.Rt_binop op ->
    charge_runtime env 30;
    Ops.apply_binop heap op (arg 0) (arg 1)
  | L.Rt_unop op ->
    charge_runtime env 16;
    Ops.apply_unop op (arg 0)
  | L.Rt_get_prop name -> (
    charge_runtime env 35;
    match as_obj recv with
    | Some o -> ic_get_prop env heap ic o name
    | None -> Value.Undef)
  | L.Rt_set_prop name -> (
    charge_runtime env 40;
    match as_obj recv with
    | Some o ->
      ic_set_prop env heap ic o name (arg 0);
      Value.Undef
    | None -> raise (Nomap_interp.Interp.Runtime_error "set property on non-object"))
  | L.Rt_get_elem -> (
    charge_runtime env 30;
    let vi = arg 0 in
    match (recv, vi) with
    | Value.Arr arr, Value.Int idx -> Heap.get_elem heap arr idx
    | Value.Arr arr, _ ->
      let idx = Value.to_int32 vi in
      if float_of_int idx = Value.to_number vi then Heap.get_elem heap arr idx
      else Value.Undef
    | Value.Str s, Value.Int idx ->
      let data = s.Value.sdata in
      if idx >= 0 && idx < String.length data then Heap.str heap (String.make 1 data.[idx])
      else Value.Undef
    | v, _ ->
      raise (Nomap_interp.Interp.Runtime_error ("cannot index " ^ Value.type_name v)))
  | L.Rt_set_elem -> (
    charge_runtime env 34;
    let vi = arg 0 and vx = arg 1 in
    match recv with
    | Value.Arr arr ->
      let idx = as_int vi in
      if float_of_int idx = Value.to_number vi then Heap.set_elem heap arr idx vx;
      Value.Undef
    | v -> raise (Nomap_interp.Interp.Runtime_error ("cannot index-assign " ^ Value.type_name v)))
  | L.Rt_get_length -> (
    charge_runtime env 16;
    match Ops.js_length recv with
    | Some v -> v
    | None -> (
      match as_obj recv with
      | Some o -> ic_get_prop env heap ic o "length"
      | None ->
        raise (Nomap_interp.Interp.Runtime_error ("no length on " ^ Value.type_name recv))))
  | L.Rt_method name -> (
    charge_runtime env 44;
    let meth =
      match (recv, ic) with
      (* Str/Arr method tables are pure in the name: resolved at decode. *)
      | Value.Str _, Some c when env.host_ic -> c.D.ic_str_meth
      | Value.Arr _, Some c when env.host_ic -> c.D.ic_arr_meth
      | _ -> Intrinsics.method_lookup recv name
    in
    match meth with
    | Some intr -> eval_intrinsic heap intr recv ids values
    | None -> (
      match as_obj recv with
      | Some o -> (
        (* NB: like the generic path, no shape-word load here — method
           dispatch reads only the slot. *)
        let slot =
          match ic with
          | Some c when env.host_ic ->
            ic_slot c o (ic_sym heap c name ~intern_on_miss:false)
          | _ -> (
            match Shape.lookup heap.Heap.shapes o.Value.shape name with
            | Some s -> s
            | None -> -1)
        in
        if slot >= 0 then
          match Heap.load_slot heap o slot with
          | Value.Fun fid -> env.call ~fid ~this:recv ~args:(arg_values values ids)
          | v ->
            raise
              (Nomap_interp.Interp.Runtime_error
                 (Printf.sprintf "%s is not a function (%s)" name (Value.type_name v)))
        else raise (Nomap_interp.Interp.Runtime_error ("no method " ^ name)))
      | None ->
        raise
          (Nomap_interp.Interp.Runtime_error
             (Printf.sprintf "no method %s on %s" name (Value.type_name recv)))))
  | L.Rt_intrinsic intr ->
    charge_runtime env
      (6 + Intrinsics.cost intr
      + Intrinsics.dynamic_cost_argc intr recv ~argc:(Array.length ids));
    eval_intrinsic heap intr recv ids values

let exec_runtime env ~ic rt (recv : Value.t) (ids : int array) (values : Value.t array) :
    Value.t =
  if Prof.enabled then begin
    let t0 = Prof.now () in
    let r = exec_runtime_uninstrumented env ~ic rt recv ids values in
    Prof.record (prof_slot_of rt) t0;
    r
  end
  else exec_runtime_uninstrumented env ~ic rt recv ids values

(** The pre-decoded form of [c], built on first execution — after every
    transform/optimizer pass has run — and cached on the compiled record. *)
let decoded (c : Specialize.compiled) =
  match c.Specialize.decoded with
  | Some d -> d
  | None ->
    let d = D.decode ~cost:base_cost c.Specialize.lir in
    c.Specialize.decoded <- Some d;
    d


(* ------------------------------------------------------------------ *)
(* Shared engine protocol.  Per-call bookkeeping, the transaction region
   markers and the exit handling are part of the simulated-metric contract,
   so they live here and every engine calls in — an engine only decides
   *how* to dispatch the instructions in between. *)

let cpi_of = function Dfg -> Timing.cpi_dfg | Ftl -> Timing.cpi_ftl

(** Count the call against its tier and allocate a fresh frame id. *)
let enter_call env ~tier =
  (match tier with
  | Ftl -> env.counters.Counters.ftl_calls <- env.counters.Counters.ftl_calls + 1
  | Dfg -> env.counters.Counters.dfg_calls <- env.counters.Counters.dfg_calls + 1);
  let frame = env.next_frame in
  env.next_frame <- env.next_frame + 1;
  frame

(** The [Tx_begin] semantics (cost/tick already charged by the engine). *)
let exec_tx_begin env (values : Value.t array) ~frame (smp : L.smp) =
  match env.htm_mode with
  | Htm.Ghost ->
    if env.ghost_depth = 0 then env.ghost_owner <- frame;
    env.ghost_depth <- env.ghost_depth + 1
  | (Htm.Rot | Htm.Rtm | Htm.Stm) as mode -> (
    match env.tx with
    | Some tx -> tx.Htm.nesting <- tx.Htm.nesting + 1
    | None ->
      let snapshot = materialize values smp.L.live in
      let stm_fallback =
        (* The fallback callback does integer bookkeeping only (the averted
           abort's reason and count); every cycle charge waits for the
           transaction's finish point — see [stm_overhead_cycles].  The
           agent also flips to software mode: hardware conflict detection is
           gone, so NOrec value validation must take over at commit. *)
        if env.stm_fallback then
          Some
            (fun reason ->
              Counters.record_abort env.counters reason;
              match env.shared_agent with
              | Some ag -> Agent.to_stm ag
              | None -> ())
        else None
      in
      env.tx <-
        Some
          (Htm.begin_tx ~capacity_scale:env.capacity_scale ?stm_fallback
             env.instance.Instance.heap ~mode ~snapshot
             ~resume_pc:smp.L.resume_pc ~owner_frame:frame);
      (match env.shared_agent with
      | Some ag -> Agent.tx_begin ag ~mode
      | None -> ());
      (* Transaction lengths scale with the workloads; scale the
         fixed begin/end costs equally so the overhead-to-work
         ratio stays in the paper's regime (DESIGN.md §6). *)
      Counters.add_cycles env.counters ~in_tx:true
        (Timing.xbegin_cycles /. float_of_int env.capacity_scale))

(** The [Tx_end] semantics (cost/tick already charged by the engine). *)
let exec_tx_end env =
  match env.htm_mode with
  | Htm.Ghost ->
    env.ghost_depth <- max 0 (env.ghost_depth - 1);
    if env.ghost_depth = 0 then env.ghost_owner <- -1
  | Htm.Rot | Htm.Rtm | Htm.Stm -> (
    match env.tx with
    | None -> ()  (* abort already tore the transaction down *)
    | Some tx ->
      tx.Htm.nesting <- tx.Htm.nesting - 1;
      if tx.Htm.nesting = 0 then begin
        if env.sof_enabled && tx.Htm.sof then raise (Htm.Abort Htm.Sof_overflow);
        (* Cross-agent commit point: flush the segment redo buffer, or
           raise [Conflict] (doomed hardware footprint / failed NOrec
           validation) before any commit accounting runs — the abort
           ladder then charges this as an abort, not a commit. *)
        (match env.shared_agent with
        | Some ag -> Agent.tx_commit ag
        | None -> ());
        (match tx.Htm.mode with
        | Htm.Stm ->
          (* Fell back mid-flight: the whole region commits in software.
             No RTM read penalty and no XEnd drain — the hardware attempt
             was wasted and is charged (with the STM costs) here. *)
          charge_stm_finish env tx ~committed:true
        | _ ->
          charge_rtm_reads env tx;
          Counters.add_cycles env.counters ~in_tx:true
            ((match tx.Htm.mode with
             | Htm.Rtm -> Timing.xend_rtm_cycles
             | _ -> Timing.xend_rot_cycles)
            /. float_of_int env.capacity_scale));
        Counters.record_commit env.counters
          ~write_kb:(Footprint.kb tx.Htm.write_fp)
          ~assoc:(Footprint.max_ways tx.Htm.write_fp);
        Htm.commit tx;
        env.tx <- None
      end)

let handle_abort env ~fid reason (tx : Htm.tx) =
  (* Reads performed before the abort still cost RTM read-latency. *)
  charge_rtm_reads env tx;
  (* A fallen-back transaction can still abort (failed in-tx check,
     watchdog): the work done in software mode is charged before the
     rollback, minus the commit-validation term. *)
  if tx.Htm.mode = Htm.Stm then charge_stm_finish env tx ~committed:false;
  Htm.rollback tx;
  (match env.shared_agent with Some ag -> Agent.tx_abort ag | None -> ());
  env.tx <- None;
  Counters.record_abort env.counters reason;
  Counters.add_cycles env.counters ~in_tx:false Timing.abort_cycles;
  env.on_abort ~fid reason;
  env.deopt_resume ~fid ~resume_pc:tx.Htm.resume_pc ~values:tx.Htm.snapshot

(** Run an engine's function body under the shared exit protocol: a
    [Deopt_exit] OSR-exits to Baseline; an [Htm.Abort] owned by this frame
    rolls the transaction back and resumes at the region entry; anyone
    else's abort keeps unwinding to its owner. *)
let run_with_exits env ~fid ~frame run =
  try run () with
  | Deopt_exit (resume_pc, vals) ->
    env.counters.Counters.deopts <- env.counters.Counters.deopts + 1;
    Counters.add_cycles env.counters ~in_tx:(in_region env) Timing.deopt_cycles;
    env.deopt_resume ~fid ~resume_pc ~values:vals
  | Htm.Abort reason -> (
    match env.tx with
    | Some tx when tx.Htm.owner_frame = frame -> handle_abort env ~fid reason tx
    | _ -> raise (Htm.Abort reason))
