(** The reference execution engine: direct interpretation of pre-decoded
    LIR, one [match] over [Lir.kind] per instruction.

    This is the engine every other engine is measured against — its
    per-instruction protocol *defines* the simulated-metric contract:

    - free instructions (ghost-mode tx markers, NoMap_BC-elided checks)
      burn fuel but neither tick the transaction watchdog nor charge
      instructions/cycles — yet their semantics (including guard failure)
      still execute;
    - everything else burns, ticks, then charges its pre-computed cost at
      the tier's CPI *before* its semantics run;
    - each block terminator charges one instruction, also before it runs.

    The [Threaded] engine compiles this exact protocol into closures; keep
    the two in lockstep (the fuzzer's engine axis diffs them instruction
    count for instruction count). *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module D = Nomap_lir.Decode
module Htm = Nomap_htm.Htm
module Specialize = Nomap_tiers.Specialize
module Hot = Nomap_util.Hot
open Machine

(* Same-module copies of the float-touching hot helpers.  The dev build
   profile compiles with -opaque, which disables cross-module inlining —
   there, a cross-module call taking or returning a float boxes it on
   every invocation (once per executed comparison / cycle charge).
   Defining these locally keeps the hot path allocation-free under every
   build profile.  Semantics must stay identical to [Machine.as_num] /
   [number] / [Hot.fget]; the fuzzer's engine axis guards the
   equivalence. *)
let[@inline] int_ i =
  if i >= Value.small_int_min && i <= Value.small_int_max then
    Array.unsafe_get Value.small_ints (i - Value.small_int_min)
  else Value.Int i

let[@inline] bool_ b = if b then Value.true_ else Value.false_

let[@inline] as_int = function Value.Int i -> i | v -> Value.to_int32 v

let[@inline] as_num = function
  | Value.Int i -> float_of_int i
  | Value.Num f -> f
  | v -> Value.to_number v

let[@inline] number f =
  if Float.is_integer f && Float.abs f <= 2147483647.0 && not (f = 0.0 && 1.0 /. f < 0.0)
  then int_ (int_of_float f)
  else Value.Num f

(* Likewise for the register-file accessors: under -opaque every operand
   read/write would otherwise be an outlined call (several per executed
   instruction).  Inlined here, each site specializes to a direct load or
   store at the concrete array type. *)
let[@inline] get a i = if Hot.checked then Array.get a i else Array.unsafe_get a i
let[@inline] set a i v = if Hot.checked then Array.set a i v else Array.unsafe_set a i v

(* And for the check counters: each interpreter arm knows its kind
   statically, so a hit is one array bump instead of a
   [Counters.add_check] call per executed check. *)
let ci_bounds = Counters.check_index L.Bounds
let ci_overflow = Counters.check_index L.Overflow
let ci_type = Counters.check_index L.Type
let ci_property = Counters.check_index L.Property
let ci_hole = Counters.check_index L.Hole
let ci_path = Counters.check_index L.Path

let[@inline] bump_check cnt ci =
  let a = cnt.Counters.checks in
  a.(ci) <- a.(ci) + 1

(* The rest of the per-instruction protocol, also same-module so it
   inlines: fuel, the transaction watchdog tick, the region predicate,
   int32-overflow materialization, and the instruction/cycle charge.
   [category_ix] fuses [Machine.category] with [Counters.category_index];
   the index constants come from Counters, so the mapping cannot drift.
   [charge] is [Machine.charge_ftl] with the CPI resolved once per
   activation — the multiply is the same IEEE operation on the same
   values in the same order, so the counter stream is bit-identical. *)
let[@inline] burn inst n =
  inst.Instance.fuel <- inst.Instance.fuel - n;
  if inst.Instance.fuel < 0 then raise Instance.Out_of_fuel

let[@inline] tx_tick env =
  match env.tx with
  | Some tx ->
    tx.Htm.instr_count <- tx.Htm.instr_count + 1;
    if tx.Htm.instr_count > env.tx_watchdog then raise (Htm.Abort Htm.Watchdog)
  | None -> ()

let[@inline] in_region env =
  match env.tx with Some _ -> true | None -> env.ghost_depth > 0

let[@inline] int_result env (overflowed : bool array) id raw =
  if raw >= Value.int32_min && raw <= Value.int32_max then int_ raw
  else begin
    set overflowed id true;
    (match env.tx with Some tx when env.sof_enabled -> tx.Htm.sof <- true | _ -> ());
    int_ (wrap_int32 raw)
  end

let ix_no_tm = Counters.category_index Counters.No_tm
let ix_tm_opt = Counters.category_index Counters.Tm_opt
let ix_tm_unopt = Counters.category_index Counters.Tm_unopt

let[@inline] category_ix env frame =
  match env.tx with
  | Some tx -> if frame = tx.Htm.owner_frame then ix_tm_opt else ix_tm_unopt
  | None ->
    if env.ghost_depth > 0 then
      if frame = env.ghost_owner then ix_tm_opt else ix_tm_unopt
    else ix_no_tm

let[@inline] bump_instrs cnt ix n =
  let a = cnt.Counters.instrs in
  a.(ix) <- a.(ix) + n

let[@inline] charge env ~frame ~cpi n =
  if n > 0 then begin
    bump_instrs env.counters (category_ix env frame) n;
    let c = float_of_int n *. cpi in
    let f = env.counters.Counters.f in
    f.Counters.cycles <- f.Counters.cycles +. c;
    if in_region env then f.Counters.tx_cycles <- f.Counters.tx_cycles +. c
  end

let exec_func env (c : Specialize.compiled) ~tier ~this ~args : Value.t =
  let d = decoded c in
  let lir = c.Specialize.lir in
  let inst = env.instance in
  let heap = inst.Instance.heap in
  let cpi = cpi_of tier in
  let frame = enter_call env ~tier in
  let n = max 1 d.D.nvalues in
  let values = Array.make n Value.Undef in
  let overflowed = Array.make n false in
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let run () =
    let prev_block = ref (-1) in
    let cur_block = ref d.D.entry in
    let running = ref true in
    let result = ref Value.Undef in
    while !running do
      let b = get d.D.dblocks !cur_block in
      (* Phis: the pre-resolved copy table for the incoming edge, applied as
         a parallel assignment (read phase, then write phase). *)
      let edges = b.D.phi_edges in
      let n_edges = Array.length edges in
      if n_edges > 0 then begin
        let prev = !prev_block in
        let rec find_edge i =
          if i >= n_edges then -1
          else if (get edges i).D.pred = prev then i
          else find_edge (i + 1)
        in
        let ei = find_edge 0 in
        if ei >= 0 then begin
          let e = get edges ei in
          let dsts = e.D.dsts and srcs = e.D.srcs in
          let scratch = d.D.scratch in
          let np = Array.length dsts in
          for i = 0 to np - 1 do
            set scratch i (get values (get srcs i))
          done;
          for i = 0 to np - 1 do
            set values (get dsts i) (get scratch i)
          done
        end
      end;
      let body = b.D.body in
      for idx = 0 to Array.length body - 1 do
        let di = get body idx in
        let v = di.D.id in
        if (di.D.is_tx_marker && env.htm_mode = Htm.Ghost) || di.D.elided then
          (* Free instructions: region markers under the Base config, and
             checks the NoMap_BC limit study elided (they keep their guard
             semantics below but model zero hardware instructions, so no
             transaction tick and no cycle charge). *)
          burn inst 1
        else begin
          burn inst 1;
          tx_tick env;
          charge env ~frame ~cpi di.D.cost
        end;
        match di.D.kind with
        | L.Nop | L.Phi _ -> ()
        | L.Param r ->
          set values v
            (if r = 0 then this
             else if r - 1 < nargs then get argv (r - 1)
             else Value.Undef)
        | L.Const c -> set values v c
        | L.Iadd (a, b) ->
          set values v
            (int_result env overflowed v (as_int (get values a) + as_int (get values b)))
        | L.Isub (a, b) ->
          set values v
            (int_result env overflowed v (as_int (get values a) - as_int (get values b)))
        | L.Iadd_wrap (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) + as_int (get values b))))
        | L.Isub_wrap (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) - as_int (get values b))))
        | L.Imul (a, b) ->
          set values v
            (int_result env overflowed v (as_int (get values a) * as_int (get values b)))
        | L.Ineg a ->
          let x = as_int (get values a) in
          (* -0 and -int32_min are not int32-representable results. *)
          if x = 0 || x = Value.int32_min then begin
            set overflowed v true;
            (match env.tx with
            | Some tx when env.sof_enabled -> tx.Htm.sof <- true
            | _ -> ());
            set values v (int_ (wrap_int32 (-x)))
          end
          else set values v (int_ (-x))
        | L.Fadd (a, b) ->
          set values v (number (as_num (get values a) +. as_num (get values b)))
        | L.Fsub (a, b) ->
          set values v (number (as_num (get values a) -. as_num (get values b)))
        | L.Fmul (a, b) ->
          set values v (number (as_num (get values a) *. as_num (get values b)))
        | L.Fdiv (a, b) ->
          set values v (number (as_num (get values a) /. as_num (get values b)))
        | L.Fmod (a, b) ->
          set values v
            (number (Float.rem (as_num (get values a)) (as_num (get values b))))
        | L.Fneg a -> set values v (number (-.as_num (get values a)))
        | L.Band (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) land as_int (get values b))))
        | L.Bor (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) lor as_int (get values b))))
        | L.Bxor (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) lxor as_int (get values b))))
        | L.Bnot a -> set values v (int_ (wrap_int32 (lnot (as_int (get values a)))))
        | L.Shl (a, b) ->
          set values v
            (int_ (wrap_int32 (as_int (get values a) lsl (as_int (get values b) land 31))))
        | L.Shr (a, b) ->
          set values v
            (int_ (as_int (get values a) asr (as_int (get values b) land 31)))
        | L.Ushr (a, b) -> set values v (Ops.js_ushr (get values a) (get values b))
        | L.Cmp (c, a, b) ->
          let x = as_num (get values a) and y = as_num (get values b) in
          let r =
            match c with
            | L.Ceq -> x = y
            | L.Cne -> x <> y (* JS: NaN != anything is true *)
            | L.Clt -> x < y
            | L.Cle -> x <= y
            | L.Cgt -> x > y
            | L.Cge -> x >= y
          in
          set values v (bool_ r)
        | L.Not a -> set values v (bool_ (not (Value.truthy (get values a))))
        | L.Load_slot (o, slot) -> (
          match get values o with
          | Value.Obj obj when slot < Array.length obj.Value.slots ->
            set values v (Heap.load_slot heap obj slot)
          | _ -> set values v Value.Undef)
        | L.Store_slot (o, slot, x) -> (
          match get values o with
          | Value.Obj obj when slot < Array.length obj.Value.slots ->
            Heap.store_slot heap obj slot (get values x)
          | _ -> ())
        | L.Store_transition (o, name, slot, x) -> (
          match get values o with
          | Value.Obj obj ->
            (* The guarding shape check ran just before; resolve the
               (memoized, site-cached) transition and install shape + value. *)
            let new_shape = ic_transition env heap di.D.ic obj name in
            if new_shape.Shape.prop_count - 1 = slot then
              Heap.transition_store heap obj new_shape slot (get values x)
            else
              (* Shape drifted (possible only in a doomed transaction). *)
              Heap.set_prop heap obj name (get values x)
          | _ -> ())
        | L.Load_elem (a, i') -> (
          match get values a with
          | Value.Arr arr -> set values v (Heap.load_elem heap arr (as_int (get values i')))
          | _ -> set values v Value.Undef)
        | L.Store_elem (a, i', x) -> (
          match get values a with
          | Value.Arr arr -> Heap.store_elem heap arr (as_int (get values i')) (get values x)
          | _ -> ())
        | L.Load_length a -> (
          match get values a with
          | Value.Arr arr ->
            Heap.note_load heap arr.Value.aaddr 8;
            set values v (int_ arr.Value.alen)
          | _ -> set values v (Value.Int 0))
        | L.Str_length a -> (
          match get values a with
          | Value.Str s -> set values v (int_ (String.length s.Value.sdata))
          | _ -> set values v (Value.Int 0))
        | L.Load_char_code (s, i') -> (
          match get values s with
          | Value.Str str ->
            set values v (int_ (Ops.string_char_code heap str (as_int (get values i'))))
          | _ -> set values v (Value.Int 0))
        | L.Load_global g -> set values v inst.Instance.globals.(g)
        | L.Store_global (g, x) -> inst.Instance.globals.(g) <- get values x
        (* Elided checks (NoMap_BC) guard exactly as charged ones do, but
           model zero hardware instructions: no check-category count, no
           cache-visible load of the metadata they test. *)
        | L.Check_int (a, e) -> (
          match get values a with
          | Value.Int _ ->
            if not di.D.elided then bump_check env.counters ci_type;
            set values v (get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_number (a, e) -> (
          match get values a with
          | Value.Int _ | Value.Num _ ->
            if not di.D.elided then bump_check env.counters ci_type;
            set values v (get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_string (a, e) -> (
          match get values a with
          | Value.Str _ ->
            if not di.D.elided then bump_check env.counters ci_type;
            set values v (get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_array (a, e) -> (
          match get values a with
          | Value.Arr _ ->
            if not di.D.elided then bump_check env.counters ci_type;
            set values v (get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_shape (a, shape_id, e) -> (
          match get values a with
          | Value.Obj o when o.Value.shape.Shape.id = shape_id ->
            if not di.D.elided then begin
              Heap.note_load heap o.Value.oaddr 8;
              bump_check env.counters ci_property
            end;
            set values v (get values a)
          | _ -> check_fail env values e L.Property)
        | L.Check_fun_eq (a, fid, e) -> (
          match get values a with
          | Value.Fun f when f = fid ->
            if not di.D.elided then bump_check env.counters ci_path;
            set values v (get values a)
          | _ -> check_fail env values e L.Path)
        | L.Check_bounds (a, i', e) -> (
          let idx = as_int (get values i') in
          match get values a with
          | Value.Arr arr when idx >= 0 && idx < arr.Value.alen ->
            if not di.D.elided then begin
              Heap.note_load heap arr.Value.aaddr 8;
              bump_check env.counters ci_bounds
            end;
            set values v (int_ idx)
          | _ -> check_fail env values e L.Bounds)
        | L.Check_str_bounds (s, i', e) -> (
          let idx = as_int (get values i') in
          match get values s with
          | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
            if not di.D.elided then bump_check env.counters ci_bounds;
            set values v (int_ idx)
          | _ -> check_fail env values e L.Bounds)
        | L.Check_not_hole (a, i', e) -> (
          let idx = as_int (get values i') in
          match get values a with
          | Value.Arr arr
            when idx >= 0
                 && idx < Array.length arr.Value.elems
                 && Heap.load_elem heap arr idx <> Value.Hole ->
            if not di.D.elided then bump_check env.counters ci_hole;
            set values v (int_ idx)
          | _ -> check_fail env values e L.Hole)
        | L.Check_overflow (a, e) ->
          if get overflowed a then check_fail env values e L.Overflow
          else begin
            if not di.D.elided then bump_check env.counters ci_overflow;
            set values v (get values a)
          end
        | L.Check_cond (a, expected, e) ->
          if Value.truthy (get values a) = expected then begin
            if not di.D.elided then bump_check env.counters ci_path;
            set values v (get values a)
          end
          else check_fail env values e L.Path
        | L.Call_func (fid, _) ->
          set values v
            (env.call ~fid ~this:Value.Undef ~args:(arg_values values di.D.args))
        | L.Call_method (fid, thisv, _) ->
          set values v
            (env.call ~fid ~this:(get values thisv) ~args:(arg_values values di.D.args))
        | L.Ctor_call (fid, _) ->
          let obj = Value.Obj (Heap.alloc_object heap) in
          let r = env.call ~fid ~this:obj ~args:(arg_values values di.D.args) in
          set values v (match r with Value.Undef -> obj | x -> x)
        | L.Call_runtime (rt, recv, _) ->
          set values v
            (exec_runtime env ~ic:di.D.ic rt (get values recv) di.D.args values)
        | L.Intrinsic (intr, _) ->
          if not di.D.elided then begin
            let ftl_c, rt_c = intrinsic_cost intr in
            charge env ~frame ~cpi ftl_c;
            charge_runtime env rt_c
          end;
          set values v (eval_intrinsic heap intr Value.Undef di.D.args values)
        | L.Alloc_object -> set values v (Value.Obj (Heap.alloc_object heap))
        | L.Alloc_array len ->
          let n = as_int (get values len) in
          if n < 0 || n > 1 lsl 24 then begin
            match env.tx with
            | Some _ -> raise (Htm.Abort Htm.Watchdog)
            | None -> raise (Nomap_interp.Interp.Runtime_error "bad array length")
          end;
          set values v (Value.Arr (Heap.alloc_array heap n))
        | L.Tx_begin smp -> exec_tx_begin env values ~frame smp
        | L.Tx_end -> exec_tx_end env
      done;
      charge env ~frame ~cpi 1;
      (* terminator *)
      match b.D.dterm with
      | L.Jump t ->
        prev_block := !cur_block;
        cur_block := t
      | L.Br (cv, bt, bf) ->
        prev_block := !cur_block;
        cur_block := (if Value.truthy (get values cv) then bt else bf)
      | L.Ret r ->
        result := (match r with Some rv -> get values rv | None -> Value.Undef);
        running := false
      | L.Unreachable -> raise (Nomap_interp.Interp.Runtime_error "reached unreachable block")
    done;
    !result
  in
  run_with_exits env ~fid:lir.L.fid ~frame run
