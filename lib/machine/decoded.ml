(** The reference execution engine: direct interpretation of pre-decoded
    LIR, one [match] over [Lir.kind] per instruction.

    This is the engine every other engine is measured against — its
    per-instruction protocol *defines* the simulated-metric contract:

    - free instructions (ghost-mode tx markers, NoMap_BC-elided checks)
      burn fuel but neither tick the transaction watchdog nor charge
      instructions/cycles — yet their semantics (including guard failure)
      still execute;
    - everything else burns, ticks, then charges its pre-computed cost at
      the tier's CPI *before* its semantics run;
    - each block terminator charges one instruction, also before it runs.

    The [Threaded] engine compiles this exact protocol into closures; keep
    the two in lockstep (the fuzzer's engine axis diffs them instruction
    count for instruction count). *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module D = Nomap_lir.Decode
module Htm = Nomap_htm.Htm
module Specialize = Nomap_tiers.Specialize
module Hot = Nomap_util.Hot
open Machine

let exec_func env (c : Specialize.compiled) ~tier ~this ~args : Value.t =
  let d = decoded c in
  let lir = c.Specialize.lir in
  let inst = env.instance in
  let heap = inst.Instance.heap in
  let frame = enter_call env ~tier in
  let n = max 1 d.D.nvalues in
  let values = Array.make n Value.Undef in
  let overflowed = Array.make n false in
  let argv = Array.of_list args in
  let nargs = Array.length argv in
  let run () =
    let prev_block = ref (-1) in
    let cur_block = ref d.D.entry in
    let running = ref true in
    let result = ref Value.Undef in
    while !running do
      let b = Hot.get d.D.dblocks !cur_block in
      (* Phis: the pre-resolved copy table for the incoming edge, applied as
         a parallel assignment (read phase, then write phase). *)
      let edges = b.D.phi_edges in
      let n_edges = Array.length edges in
      if n_edges > 0 then begin
        let prev = !prev_block in
        let rec find_edge i =
          if i >= n_edges then -1
          else if (Hot.get edges i).D.pred = prev then i
          else find_edge (i + 1)
        in
        let ei = find_edge 0 in
        if ei >= 0 then begin
          let e = Hot.get edges ei in
          let dsts = e.D.dsts and srcs = e.D.srcs in
          let scratch = d.D.scratch in
          let np = Array.length dsts in
          for i = 0 to np - 1 do
            Hot.set scratch i (Hot.get values (Hot.get srcs i))
          done;
          for i = 0 to np - 1 do
            Hot.set values (Hot.get dsts i) (Hot.get scratch i)
          done
        end
      end;
      let body = b.D.body in
      for idx = 0 to Array.length body - 1 do
        let di = Hot.get body idx in
        let v = di.D.id in
        if (di.D.is_tx_marker && env.htm_mode = Htm.Ghost) || di.D.elided then
          (* Free instructions: region markers under the Base config, and
             checks the NoMap_BC limit study elided (they keep their guard
             semantics below but model zero hardware instructions, so no
             transaction tick and no cycle charge). *)
          Instance.burn inst 1
        else begin
          Instance.burn inst 1;
          tx_tick env;
          charge_ftl env ~frame ~tier di.D.cost
        end;
        match di.D.kind with
        | L.Nop | L.Phi _ -> ()
        | L.Param r ->
          Hot.set values v
            (if r = 0 then this
             else if r - 1 < nargs then Hot.get argv (r - 1)
             else Value.Undef)
        | L.Const c -> Hot.set values v c
        | L.Iadd (a, b) ->
          Hot.set values v
            (int_result env overflowed v (as_int (Hot.get values a) + as_int (Hot.get values b)))
        | L.Isub (a, b) ->
          Hot.set values v
            (int_result env overflowed v (as_int (Hot.get values a) - as_int (Hot.get values b)))
        | L.Iadd_wrap (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) + as_int (Hot.get values b))))
        | L.Isub_wrap (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) - as_int (Hot.get values b))))
        | L.Imul (a, b) ->
          Hot.set values v
            (int_result env overflowed v (as_int (Hot.get values a) * as_int (Hot.get values b)))
        | L.Ineg a ->
          let x = as_int (Hot.get values a) in
          (* -0 and -int32_min are not int32-representable results. *)
          if x = 0 || x = Value.int32_min then begin
            Hot.set overflowed v true;
            (match env.tx with
            | Some tx when env.sof_enabled -> tx.Htm.sof <- true
            | _ -> ());
            Hot.set values v (Value.Int (wrap_int32 (-x)))
          end
          else Hot.set values v (Value.Int (-x))
        | L.Fadd (a, b) ->
          Hot.set values v (Value.number (as_num (Hot.get values a) +. as_num (Hot.get values b)))
        | L.Fsub (a, b) ->
          Hot.set values v (Value.number (as_num (Hot.get values a) -. as_num (Hot.get values b)))
        | L.Fmul (a, b) ->
          Hot.set values v (Value.number (as_num (Hot.get values a) *. as_num (Hot.get values b)))
        | L.Fdiv (a, b) ->
          Hot.set values v (Value.number (as_num (Hot.get values a) /. as_num (Hot.get values b)))
        | L.Fmod (a, b) ->
          Hot.set values v
            (Value.number (Float.rem (as_num (Hot.get values a)) (as_num (Hot.get values b))))
        | L.Fneg a -> Hot.set values v (Value.number (-.as_num (Hot.get values a)))
        | L.Band (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) land as_int (Hot.get values b))))
        | L.Bor (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) lor as_int (Hot.get values b))))
        | L.Bxor (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) lxor as_int (Hot.get values b))))
        | L.Bnot a -> Hot.set values v (Value.Int (wrap_int32 (lnot (as_int (Hot.get values a)))))
        | L.Shl (a, b) ->
          Hot.set values v
            (Value.Int (wrap_int32 (as_int (Hot.get values a) lsl (as_int (Hot.get values b) land 31))))
        | L.Shr (a, b) ->
          Hot.set values v
            (Value.Int (as_int (Hot.get values a) asr (as_int (Hot.get values b) land 31)))
        | L.Ushr (a, b) -> Hot.set values v (Ops.js_ushr (Hot.get values a) (Hot.get values b))
        | L.Cmp (c, a, b) ->
          let x = as_num (Hot.get values a) and y = as_num (Hot.get values b) in
          let r =
            match c with
            | L.Ceq -> x = y
            | L.Cne -> x <> y (* JS: NaN != anything is true *)
            | L.Clt -> x < y
            | L.Cle -> x <= y
            | L.Cgt -> x > y
            | L.Cge -> x >= y
          in
          Hot.set values v (Value.Bool r)
        | L.Not a -> Hot.set values v (Value.Bool (not (Value.truthy (Hot.get values a))))
        | L.Load_slot (o, slot) -> (
          match as_obj (Hot.get values o) with
          | Some obj when slot < Array.length obj.Value.slots ->
            Hot.set values v (Heap.load_slot heap obj slot)
          | _ -> Hot.set values v Value.Undef)
        | L.Store_slot (o, slot, x) -> (
          match as_obj (Hot.get values o) with
          | Some obj when slot < Array.length obj.Value.slots ->
            Heap.store_slot heap obj slot (Hot.get values x)
          | _ -> ())
        | L.Store_transition (o, name, slot, x) -> (
          match as_obj (Hot.get values o) with
          | Some obj ->
            (* The guarding shape check ran just before; resolve the
               (memoized) transition and install shape + value. *)
            let new_shape = Shape.transition heap.Heap.shapes obj.Value.shape name in
            if new_shape.Shape.prop_count - 1 = slot then
              Heap.transition_store heap obj new_shape slot (Hot.get values x)
            else
              (* Shape drifted (possible only in a doomed transaction). *)
              Heap.set_prop heap obj name (Hot.get values x)
          | None -> ())
        | L.Load_elem (a, i') -> (
          match as_arr (Hot.get values a) with
          | Some arr -> Hot.set values v (Heap.load_elem heap arr (as_int (Hot.get values i')))
          | None -> Hot.set values v Value.Undef)
        | L.Store_elem (a, i', x) -> (
          match as_arr (Hot.get values a) with
          | Some arr -> Heap.store_elem heap arr (as_int (Hot.get values i')) (Hot.get values x)
          | None -> ())
        | L.Load_length a -> (
          match as_arr (Hot.get values a) with
          | Some arr ->
            heap.Heap.hooks.load arr.Value.aaddr 8;
            Hot.set values v (Value.Int arr.Value.alen)
          | None -> Hot.set values v (Value.Int 0))
        | L.Str_length a -> (
          match Hot.get values a with
          | Value.Str s -> Hot.set values v (Value.Int (String.length s.Value.sdata))
          | _ -> Hot.set values v (Value.Int 0))
        | L.Load_char_code (s, i') -> (
          match Hot.get values s with
          | Value.Str str ->
            Hot.set values v (Value.Int (Ops.string_char_code heap str (as_int (Hot.get values i'))))
          | _ -> Hot.set values v (Value.Int 0))
        | L.Load_global g -> Hot.set values v inst.Instance.globals.(g)
        | L.Store_global (g, x) -> inst.Instance.globals.(g) <- Hot.get values x
        (* Elided checks (NoMap_BC) guard exactly as charged ones do, but
           model zero hardware instructions: no check-category count, no
           cache-visible load of the metadata they test. *)
        | L.Check_int (a, e) -> (
          match Hot.get values a with
          | Value.Int _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_number (a, e) -> (
          match Hot.get values a with
          | Value.Int _ | Value.Num _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_string (a, e) -> (
          match Hot.get values a with
          | Value.Str _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_array (a, e) -> (
          match Hot.get values a with
          | Value.Arr _ ->
            if not di.D.elided then Counters.add_check env.counters L.Type;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Type)
        | L.Check_shape (a, shape_id, e) -> (
          match Hot.get values a with
          | Value.Obj o when o.Value.shape.Shape.id = shape_id ->
            if not di.D.elided then begin
              heap.Heap.hooks.load o.Value.oaddr 8;
              Counters.add_check env.counters L.Property
            end;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Property)
        | L.Check_fun_eq (a, fid, e) -> (
          match Hot.get values a with
          | Value.Fun f when f = fid ->
            if not di.D.elided then Counters.add_check env.counters L.Path;
            Hot.set values v (Hot.get values a)
          | _ -> check_fail env values e L.Path)
        | L.Check_bounds (a, i', e) -> (
          let idx = as_int (Hot.get values i') in
          match as_arr (Hot.get values a) with
          | Some arr when idx >= 0 && idx < arr.Value.alen ->
            if not di.D.elided then begin
              heap.Heap.hooks.load arr.Value.aaddr 8;
              Counters.add_check env.counters L.Bounds
            end;
            Hot.set values v (Value.Int idx)
          | _ -> check_fail env values e L.Bounds)
        | L.Check_str_bounds (s, i', e) -> (
          let idx = as_int (Hot.get values i') in
          match Hot.get values s with
          | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
            if not di.D.elided then Counters.add_check env.counters L.Bounds;
            Hot.set values v (Value.Int idx)
          | _ -> check_fail env values e L.Bounds)
        | L.Check_not_hole (a, i', e) -> (
          let idx = as_int (Hot.get values i') in
          match as_arr (Hot.get values a) with
          | Some arr
            when idx >= 0
                 && idx < Array.length arr.Value.elems
                 && Heap.load_elem heap arr idx <> Value.Hole ->
            if not di.D.elided then Counters.add_check env.counters L.Hole;
            Hot.set values v (Value.Int idx)
          | _ -> check_fail env values e L.Hole)
        | L.Check_overflow (a, e) ->
          if Hot.get overflowed a then check_fail env values e L.Overflow
          else begin
            if not di.D.elided then Counters.add_check env.counters L.Overflow;
            Hot.set values v (Hot.get values a)
          end
        | L.Check_cond (a, expected, e) ->
          if Value.truthy (Hot.get values a) = expected then begin
            if not di.D.elided then Counters.add_check env.counters L.Path;
            Hot.set values v (Hot.get values a)
          end
          else check_fail env values e L.Path
        | L.Call_func (fid, _) ->
          Hot.set values v
            (env.call ~fid ~this:Value.Undef ~args:(arg_values values di.D.args))
        | L.Call_method (fid, thisv, _) ->
          Hot.set values v
            (env.call ~fid ~this:(Hot.get values thisv) ~args:(arg_values values di.D.args))
        | L.Ctor_call (fid, _) ->
          let obj = Value.Obj (Heap.alloc_object heap) in
          let r = env.call ~fid ~this:obj ~args:(arg_values values di.D.args) in
          Hot.set values v (match r with Value.Undef -> obj | x -> x)
        | L.Call_runtime (rt, recv, _) ->
          Hot.set values v (exec_runtime env rt (Hot.get values recv) di.D.args values)
        | L.Intrinsic (intr, _) ->
          if not di.D.elided then begin
            let ftl_c, rt_c = intrinsic_cost intr in
            charge_ftl env ~frame ~tier ftl_c;
            charge_runtime env rt_c
          end;
          Hot.set values v
            (try Intrinsics.eval heap intr Value.Undef (arg_values values di.D.args)
             with Intrinsics.Type_error m -> raise (Nomap_interp.Interp.Runtime_error m))
        | L.Alloc_object -> Hot.set values v (Value.Obj (Heap.alloc_object heap))
        | L.Alloc_array len ->
          let n = as_int (Hot.get values len) in
          if n < 0 || n > 1 lsl 24 then begin
            if env.tx <> None then raise (Htm.Abort Htm.Watchdog)
            else raise (Nomap_interp.Interp.Runtime_error "bad array length")
          end;
          Hot.set values v (Value.Arr (Heap.alloc_array heap n))
        | L.Tx_begin smp -> exec_tx_begin env values ~frame smp
        | L.Tx_end -> exec_tx_end env
      done;
      charge_ftl env ~frame ~tier 1;
      (* terminator *)
      match b.D.dterm with
      | L.Jump t ->
        prev_block := !cur_block;
        cur_block := t
      | L.Br (cv, bt, bf) ->
        prev_block := !cur_block;
        cur_block := (if Value.truthy (Hot.get values cv) then bt else bf)
      | L.Ret r ->
        result := (match r with Some rv -> Hot.get values rv | None -> Value.Undef);
        running := false
      | L.Unreachable -> raise (Nomap_interp.Interp.Runtime_error "reached unreachable block")
    done;
    !result
  in
  run_with_exits env ~fid:lir.L.fid ~frame run
