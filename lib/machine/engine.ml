(** Execution-engine selection.

    Both engines run the same pre-decoded LIR against the same [Machine]
    substrate and are required to produce bit-identical results, heap
    contents and [Counters.t] — the fuzzer's engine axis and the
    engine-equivalence test suite enforce it.

    - [Decoded]: the reference interpreter — one [match] over [Lir.kind]
      per instruction ([Decoded.exec_func]).
    - [Threaded]: the closure-threaded compiler — each block body is
      compiled once into a chain of OCaml closures with superinstruction
      fusion ([Threaded.exec_func]); the default. *)

type kind = Decoded | Threaded

let all = [ Decoded; Threaded ]
let default = Threaded
let name = function Decoded -> "decoded" | Threaded -> "threaded"

let of_string = function
  | "decoded" -> Some Decoded
  | "threaded" -> Some Threaded
  | _ -> None
