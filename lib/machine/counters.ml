(** Execution metrics: dynamic instruction counts by paper category
    (NoFTL / NoTM / TMUnopt / TMOpt), executed checks by kind, simulated
    cycles split into transactional and non-transactional time, and
    transaction statistics — everything Figures 3 and 8-11 and Tables I and
    IV are built from. *)

type category = No_ftl | No_tm | Tm_unopt | Tm_opt

let category_index = function No_ftl -> 0 | No_tm -> 1 | Tm_unopt -> 2 | Tm_opt -> 3
let category_name = function
  | No_ftl -> "NoFTL"
  | No_tm -> "NoTM"
  | Tm_unopt -> "TMUnopt"
  | Tm_opt -> "TMOpt"

let categories = [ No_ftl; No_tm; Tm_unopt; Tm_opt ]

let check_index = function
  | Nomap_lir.Lir.Bounds -> 0
  | Nomap_lir.Lir.Overflow -> 1
  | Nomap_lir.Lir.Type -> 2
  | Nomap_lir.Lir.Property -> 3
  | Nomap_lir.Lir.Hole -> 4
  | Nomap_lir.Lir.Path -> 5

let check_kinds =
  [ Nomap_lir.Lir.Bounds; Nomap_lir.Lir.Overflow; Nomap_lir.Lir.Type; Nomap_lir.Lir.Property;
    Nomap_lir.Lir.Hole; Nomap_lir.Lir.Path ]

(* All-float record: OCaml gives it the flat float representation, so the
   per-instruction accumulation in [add_cycles] is an unboxed store.  Kept
   in a mixed record these fields would be boxed and every update would
   allocate — at one update per charged instruction that dominated the
   engines' minor-heap traffic. *)
type fstats = {
  mutable cycles : float;
  mutable tx_cycles : float;  (** cycles inside transactions (TMTime) *)
  (* Committed-transaction write-set characterization (Table IV). *)
  mutable tx_write_kb_sum : float;
  mutable tx_write_kb_max : float;
  mutable tx_assoc_sum : float;
  mutable stm_cycles : float;
      (** subset of [tx_cycles]: modeled software-transaction overhead
          charged to hybrid transactions that fell back (DESIGN.md §15) *)
}

type t = {
  instrs : int array;  (** per category *)
  checks : int array;  (** executed FTL checks per kind *)
  f : fstats;
  mutable deopts : int;
  mutable ftl_calls : int;  (** invocations of FTL-compiled functions *)
  mutable dfg_calls : int;
  mutable tx_commits : int;
  mutable tx_aborts : int;
  abort_reasons : (string, int) Hashtbl.t;
  mutable tx_assoc_max : int;
  mutable tx_samples : int;
  (* Hybrid RTM+STM fallback activity (DESIGN.md §15).  A fallen-back
     transaction that commits counts in both [tx_commits] and
     [stm_commits]; [stm_reads]/[stm_writes] are the total accesses of
     fallen-back transactions (prefix re-execution included). *)
  mutable stm_commits : int;
  mutable stm_aborts : int;
  mutable stm_reads : int;
  mutable stm_writes : int;
  (* Shared-segment traffic (DESIGN.md §16): every [Shared]/[Atomics]
     operation this VM's agent completed, uniform across tiers and engines
     (the agent's note callback fires once per operation). *)
  mutable shared_loads : int;
  mutable shared_stores : int;
  mutable shared_rmws : int;
  mutable shared_fences : int;
}

let create () =
  {
    instrs = Array.make 4 0;
    checks = Array.make 6 0;
    f =
      {
        cycles = 0.0;
        tx_cycles = 0.0;
        tx_write_kb_sum = 0.0;
        tx_write_kb_max = 0.0;
        tx_assoc_sum = 0.0;
        stm_cycles = 0.0;
      };
    deopts = 0;
    ftl_calls = 0;
    dfg_calls = 0;
    tx_commits = 0;
    tx_aborts = 0;
    abort_reasons = Hashtbl.create 8;
    tx_assoc_max = 0;
    tx_samples = 0;
    stm_commits = 0;
    stm_aborts = 0;
    stm_reads = 0;
    stm_writes = 0;
    shared_loads = 0;
    shared_stores = 0;
    shared_rmws = 0;
    shared_fences = 0;
  }

let cycles t = t.f.cycles
let tx_cycles t = t.f.tx_cycles
let stm_cycles t = t.f.stm_cycles
let tx_write_kb_sum t = t.f.tx_write_kb_sum
let tx_write_kb_max t = t.f.tx_write_kb_max
let tx_assoc_sum t = t.f.tx_assoc_sum

let total_instrs t = Array.fold_left ( + ) 0 t.instrs
let total_checks t = Array.fold_left ( + ) 0 t.checks

let[@inline] add_instrs t cat n =
  t.instrs.(category_index cat) <- t.instrs.(category_index cat) + n

let[@inline] add_check t kind =
  t.checks.(check_index kind) <- t.checks.(check_index kind) + 1

let[@inline] add_cycles t ~in_tx c =
  let f = t.f in
  f.cycles <- f.cycles +. c;
  if in_tx then f.tx_cycles <- f.tx_cycles +. c

let record_abort t reason =
  t.tx_aborts <- t.tx_aborts + 1;
  let name = Nomap_htm.Htm.abort_reason_name reason in
  Hashtbl.replace t.abort_reasons name
    (1 + try Hashtbl.find t.abort_reasons name with Not_found -> 0)

let record_commit t ~write_kb ~assoc =
  t.tx_commits <- t.tx_commits + 1;
  t.tx_samples <- t.tx_samples + 1;
  let f = t.f in
  f.tx_write_kb_sum <- f.tx_write_kb_sum +. write_kb;
  f.tx_write_kb_max <- Float.max f.tx_write_kb_max write_kb;
  f.tx_assoc_sum <- f.tx_assoc_sum +. float_of_int assoc;
  t.tx_assoc_max <- max t.tx_assoc_max assoc

(** Instruction-category fractions of the total. *)
let category_fraction t cat =
  let total = total_instrs t in
  if total = 0 then 0.0
  else float_of_int t.instrs.(category_index cat) /. float_of_int total

let checks_per_100 t kind =
  let total = total_instrs t in
  if total = 0 then 0.0
  else 100.0 *. float_of_int t.checks.(check_index kind) /. float_of_int total

let copy_f f =
  {
    cycles = f.cycles;
    tx_cycles = f.tx_cycles;
    tx_write_kb_sum = f.tx_write_kb_sum;
    tx_write_kb_max = f.tx_write_kb_max;
    tx_assoc_sum = f.tx_assoc_sum;
    stm_cycles = f.stm_cycles;
  }

let copy t =
  { t with instrs = Array.copy t.instrs; checks = Array.copy t.checks; f = copy_f t.f;
    abort_reasons = Hashtbl.copy t.abort_reasons }

(** Open a measurement window: returns a snapshot for [diff ~before] and
    resets the running maxima, so the maxima reported by a later [diff] come
    from transactions committed inside the window only (Table IV must not be
    polluted by warmup-only transactions, e.g. pre-demotion placements). *)
let begin_window t =
  let before = copy t in
  t.f.tx_write_kb_max <- 0.0;
  t.tx_assoc_max <- 0;
  before

(** Metrics accumulated between [begin_window] and now (for steady-state
    measurement after warmup).  Maxima are window maxima: [begin_window]
    reset them, so [now]'s values cover exactly the measured interval. *)
let diff ~now ~before =
  let t = create () in
  Array.iteri (fun i x -> t.instrs.(i) <- x - before.instrs.(i)) now.instrs;
  Array.iteri (fun i x -> t.checks.(i) <- x - before.checks.(i)) now.checks;
  t.f.cycles <- now.f.cycles -. before.f.cycles;
  t.f.tx_cycles <- now.f.tx_cycles -. before.f.tx_cycles;
  t.deopts <- now.deopts - before.deopts;
  t.ftl_calls <- now.ftl_calls - before.ftl_calls;
  t.dfg_calls <- now.dfg_calls - before.dfg_calls;
  t.tx_commits <- now.tx_commits - before.tx_commits;
  t.tx_aborts <- now.tx_aborts - before.tx_aborts;
  Hashtbl.iter
    (fun reason n ->
      let earlier = try Hashtbl.find before.abort_reasons reason with Not_found -> 0 in
      if n - earlier > 0 then Hashtbl.replace t.abort_reasons reason (n - earlier))
    now.abort_reasons;
  t.f.tx_write_kb_sum <- now.f.tx_write_kb_sum -. before.f.tx_write_kb_sum;
  t.f.tx_write_kb_max <- now.f.tx_write_kb_max;
  t.f.tx_assoc_sum <- now.f.tx_assoc_sum -. before.f.tx_assoc_sum;
  t.tx_assoc_max <- now.tx_assoc_max;
  t.tx_samples <- now.tx_samples - before.tx_samples;
  t.f.stm_cycles <- now.f.stm_cycles -. before.f.stm_cycles;
  t.stm_commits <- now.stm_commits - before.stm_commits;
  t.stm_aborts <- now.stm_aborts - before.stm_aborts;
  t.stm_reads <- now.stm_reads - before.stm_reads;
  t.stm_writes <- now.stm_writes - before.stm_writes;
  t.shared_loads <- now.shared_loads - before.shared_loads;
  t.shared_stores <- now.shared_stores - before.shared_stores;
  t.shared_rmws <- now.shared_rmws - before.shared_rmws;
  t.shared_fences <- now.shared_fences - before.shared_fences;
  t

(** Canonical one-line rendering of the full counter table.  Cycles are
    hex-floats so the comparison is exact to the last bit.  Shared by the
    determinism golden (test/determinism.expected) and the fuzzer's engine
    axis, where decoded × threaded must match bit-for-bit. *)
let to_canonical_string (c : t) =
  let ints a = String.concat "," (List.map string_of_int (Array.to_list a)) in
  let reasons =
    Hashtbl.fold (fun k v acc -> (k, v) :: acc) c.abort_reasons []
    |> List.sort compare
    |> List.map (fun (k, v) -> Printf.sprintf "%s=%d" k v)
    |> String.concat ","
  in
  (* The stm block is appended only when the hybrid fallback actually fired,
     so every arch (and every hybrid run that never overflowed) keeps the
     historical row format — existing golden rows stay byte-identical. *)
  let stm =
    if
      c.stm_commits = 0 && c.stm_aborts = 0 && c.stm_reads = 0
      && c.stm_writes = 0 && c.f.stm_cycles = 0.0
    then ""
    else
      Printf.sprintf " stm={commits=%d aborts=%d reads=%d writes=%d cycles=%h}"
        c.stm_commits c.stm_aborts c.stm_reads c.stm_writes c.f.stm_cycles
  in
  (* Same trick for shared-segment traffic: workloads that never touch a
     segment — every pre-existing golden row — print unchanged. *)
  let shared =
    if
      c.shared_loads = 0 && c.shared_stores = 0 && c.shared_rmws = 0
      && c.shared_fences = 0
    then ""
    else
      Printf.sprintf " shared={loads=%d stores=%d rmws=%d fences=%d}"
        c.shared_loads c.shared_stores c.shared_rmws c.shared_fences
  in
  Printf.sprintf
    "instrs=[%s] checks=[%s] cycles=%h tx_cycles=%h deopts=%d ftl=%d dfg=%d \
     commits=%d aborts=%d reasons={%s} wkb_sum=%h wkb_max=%h assoc_sum=%h \
     assoc_max=%d samples=%d%s%s"
    (ints c.instrs) (ints c.checks) c.f.cycles c.f.tx_cycles c.deopts c.ftl_calls
    c.dfg_calls c.tx_commits c.tx_aborts reasons c.f.tx_write_kb_sum
    c.f.tx_write_kb_max c.f.tx_assoc_sum c.tx_assoc_max c.tx_samples stm shared
