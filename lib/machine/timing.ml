(** Cycle model (paper §VI-A).

    Execution time in Figures 10/11 is simulated cycles, computed as
    instructions × a per-code-class CPI plus the explicit transactional
    overheads the paper charges:

    - XBegin is modeled as an mfence (the dominant cost the paper
      identifies): [xbegin_cycles].
    - Lightweight (ROT) XEnd flash-clears SW bits: +5 cycles (paper cites a
      few cycles via a tag-array circuit [41]).
    - RTM XEnd stalls for write-buffer drain: ≥13 cycles (Ritson & Barnes).
    - RTM transactional reads are ~20% slower: [rtm_read_penalty] extra
      cycles per in-transaction load.
    - A deoptimization (OSR exit + Baseline warm-in) and an abort (rollback
      + redirect) get fixed costs; both are rare in steady state.

    CPIs position FTL ≈ 41-64% faster than DFG per instruction (backend
    quality: LLVM instruction selection), with runtime/interpreter code
    missing caches more often. *)

let cpi_ftl = 0.55
let cpi_dfg = 0.80
let cpi_runtime = 1.00  (* NoFTL: interpreter, baseline, C runtime *)

let xbegin_cycles = 30.0
let xend_rot_cycles = 5.0
let xend_rtm_cycles = 13.0
let rtm_read_penalty = 0.6  (* extra cycles per transactional read (~20% of a ~3-cycle load) *)

let deopt_cycles = 400.0
let abort_cycles = 200.0

(* Hybrid RTM+STM fallback (DESIGN.md §15): a capacity overflow upgrades the
   transaction to a modeled redo-log software transaction instead of
   deoptimizing.  The STM charges a setup cost (descriptor + log
   allocation), a commit cost (write-back; validation is vacuous for a
   single-owner run but the lock acquire/release is not), and a per-access
   instrumentation multiplier carried by [Config.stm_factor] on top of
   [stm_access_cycles] — the baseline cost of one load/store (matching the
   3-instruction load/store cost in the machine's cost table). *)
let stm_begin_cycles = 60.0
let stm_commit_cycles = 40.0
let stm_access_cycles = 3.0
