(** The closure-threaded execution engine.

    Compiles each pre-decoded block body once into a chain of OCaml
    closures — each closure executes its instruction, charges its
    pre-computed cost/tick/counter updates, and tail-calls the next — so
    the per-instruction [match] over [Lir.kind] (the decode-interpret
    dispatch tax) is paid once at compile time instead of on every
    execution.  A peephole selector over the decoded stream fuses maximal
    call/tx-marker-free straight-line runs into *deferred-accounting
    segments* — the superinstructions:

    - One [burn] of the whole segment's fuel and one batched watchdog-tick
      add up front (with an exact per-instruction fallback chain when the
      batched tick could cross the transaction watchdog, so a watchdog
      abort still fires at the precise instruction it would have under the
      reference engine).
    - The semantics then run back to back as a chain of closures,
      exactly as the decoded engine's match arms execute them.
    - The segment's [add_instrs]/[add_cycles] charges are applied once at
      the end: a single [add_instrs] of the summed cost (integer adds
      commute exactly) and the per-instruction cycle deltas accumulated in
      original program order (the FP additions into [cycles] are the same
      operations on the same values in the same order, so the result is
      bit-identical).  Category and in-region flag are invariant across
      the segment — it contains no calls and no tx markers — so computing
      them once is exact.
    - Deferral is safe because no instruction inside a segment *observes*
      the counters; the only way the reordering could show is if the
      segment ends early.  Instructions that can raise or abort (checks →
      deopt; heap-hook touchers → capacity aborts; allocs) therefore
      record how many instructions' accounting is due ([st.due]) before
      their semantics run, and the segment's exception guard reconciles
      exactly that prefix — restoring the reference engine's precise
      counter state — before re-raising.  Pure instructions
      ([Decode.pure]) cannot raise and skip the bookkeeping entirely.
      (The transaction's [instr_count] may be over-advanced when an abort
      tears the transaction down mid-segment; [handle_abort] never reads
      it and the transaction object dies, so it is unobservable.)
    - *elided runs* are the degenerate segment with zero tick and zero
      cost: the closure only burns fuel (semantics still guard).
    - *check+consumer pairs*: [Check_bounds]+[Load_elem]/[Store_elem] and
      [Check_str_bounds]+[Load_char_code] whose consumer indexes through
      the check's result additionally fuse into one closure that keeps
      the array/index in locals instead of re-reading and re-matching
      them; [st.due] advances across both halves, so the reconciled
      charges and the abort points are unchanged.

    Batched fuel: a segment burns its fuel up front, so a program that
    runs out of fuel mid-segment dies a few instructions earlier than
    under the decoded engine.  [Out_of_fuel] is a crash, not an
    observation — the oracle compares crash identity, and both engines
    raise the same exception — so this is crash-equivalent.

    Calls, intrinsics, runtime calls and tx markers (which change the
    category/in-region state or re-enter the VM) stay solo closures with
    the reference engine's exact protocol baked in at compile time (free /
    zero-cost / charged variants resolved once, CPI multiplication
    pre-computed — [float_of_int cost *. cpi] at compile time is the same
    IEEE operation the decoded engine performs at run time).

    The compiled chain is cached on [Specialize.compiled] via the
    extensible [Specialize.artifact] slot; adaptation discarding a version
    ([ftl <- None]) discards the chain with it.  Closures capture the
    [Machine.env] they were compiled against — compiled records are
    per-VM, so this never crosses VMs (or domains). *)

module Value = Nomap_runtime.Value
module Heap = Nomap_runtime.Heap
module Ops = Nomap_runtime.Ops
module Shape = Nomap_runtime.Shape
module Intrinsics = Nomap_runtime.Intrinsics
module Instance = Nomap_interp.Instance
module L = Nomap_lir.Lir
module D = Nomap_lir.Decode
module Htm = Nomap_htm.Htm
module Specialize = Nomap_tiers.Specialize
module Hot = Nomap_util.Hot
open Machine

(* Same-module copies of the float-touching hot helpers.  The dev build
   profile compiles with -opaque, which disables cross-module inlining —
   there, a cross-module call taking or returning a float boxes it on
   every invocation (once per executed comparison / cycle charge).
   Defining these locally keeps the hot path allocation-free under every
   build profile.  Semantics must stay identical to [Machine.as_num] /
   [number] / [Hot.fget]; the fuzzer's engine axis guards the
   equivalence. *)
let[@inline] int_ i =
  if i >= Value.small_int_min && i <= Value.small_int_max then
    Array.unsafe_get Value.small_ints (i - Value.small_int_min)
  else Value.Int i

let[@inline] bool_ b = if b then Value.true_ else Value.false_

let[@inline] as_int = function Value.Int i -> i | v -> Value.to_int32 v

let[@inline] as_num = function
  | Value.Int i -> float_of_int i
  | Value.Num f -> f
  | v -> Value.to_number v

let[@inline] number f =
  if Float.is_integer f && Float.abs f <= 2147483647.0 && not (f = 0.0 && 1.0 /. f < 0.0)
  then int_ (int_of_float f)
  else Value.Num f

let[@inline] fget (a : float array) i =
  if Hot.checked then Array.get a i else Array.unsafe_get a i

(* Likewise for the register-file accessors: under -opaque every operand
   read/write would otherwise be an outlined call (several per executed
   instruction).  Inlined here, each site specializes to a direct load or
   store at the concrete array type. *)
let[@inline] get a i = if Hot.checked then Array.get a i else Array.unsafe_get a i
let[@inline] set a i v = if Hot.checked then Array.set a i v else Array.unsafe_set a i v

(* And for the check counters: the kind index is fixed at closure-compile
   time, so a hit is one array bump instead of a [Counters.add_check]
   call per executed check. *)
let ci_bounds = Counters.check_index L.Bounds
let ci_overflow = Counters.check_index L.Overflow
let ci_type = Counters.check_index L.Type
let ci_property = Counters.check_index L.Property
let ci_hole = Counters.check_index L.Hole
let ci_path = Counters.check_index L.Path

let[@inline] bump_check cnt ci =
  let a = cnt.Counters.checks in
  a.(ci) <- a.(ci) + 1

(* The rest of the reference engine's per-instruction protocol, also
   same-module so it inlines: fuel, the transaction watchdog tick, the
   region predicate, int32-overflow materialization, and the instruction
   counter.  [category_ix] fuses [Machine.category] with
   [Counters.category_index]; the index constants come from Counters, so
   the mapping cannot drift. *)
let[@inline] burn inst n =
  inst.Instance.fuel <- inst.Instance.fuel - n;
  if inst.Instance.fuel < 0 then raise Instance.Out_of_fuel

let[@inline] tx_tick env =
  match env.tx with
  | Some tx ->
    tx.Htm.instr_count <- tx.Htm.instr_count + 1;
    if tx.Htm.instr_count > env.tx_watchdog then raise (Htm.Abort Htm.Watchdog)
  | None -> ()

let[@inline] in_region env =
  match env.tx with Some _ -> true | None -> env.ghost_depth > 0

let[@inline] int_result env (overflowed : bool array) id raw =
  if raw >= Value.int32_min && raw <= Value.int32_max then int_ raw
  else begin
    set overflowed id true;
    (match env.tx with Some tx when env.sof_enabled -> tx.Htm.sof <- true | _ -> ());
    int_ (wrap_int32 raw)
  end

let ix_no_tm = Counters.category_index Counters.No_tm
let ix_tm_opt = Counters.category_index Counters.Tm_opt
let ix_tm_unopt = Counters.category_index Counters.Tm_unopt

let[@inline] category_ix env frame =
  match env.tx with
  | Some tx -> if frame = tx.Htm.owner_frame then ix_tm_opt else ix_tm_unopt
  | None ->
    if env.ghost_depth > 0 then
      if frame = env.ghost_owner then ix_tm_opt else ix_tm_unopt
    else ix_no_tm

let[@inline] bump_instrs cnt ix n =
  let a = cnt.Counters.instrs in
  a.(ix) <- a.(ix) + n

(** Per-activation state threaded through every closure.  [next_block] is
    the driver's program counter; -1 means the function returned. *)
type state = {
  values : Value.t array;
  overflowed : bool array;
  mutable this : Value.t;
  mutable argv : Value.t array;
  mutable nargs : int;
  mutable frame : int;
  mutable prev_block : int;
  mutable next_block : int;
  mutable result : Value.t;
  mutable due : int;
      (** deferred-accounting progress within the executing segment: number
          of leading segment instructions whose instr/cycle charges must be
          reconciled if the segment raises (see the module doc) *)
}

type code = state -> unit

type tfunc = {
  t_entry : int;
  t_blocks : code array;  (** per-block entry closure (phis + body + term) *)
  t_nvalues : int;
  t_tier : tier;
  mutable t_pool : state list;
      (** activation-frame free list: a normal return scrubs its frame
          (values/overflowed reset to the fresh-frame state) and parks it
          here; frames abandoned by a deopt/abort/error are simply dropped.
          Recursion is safe — a frame in use is never simultaneously in the
          pool. *)
}

type Specialize.artifact += Threaded_code of tfunc

let compile_func env ~tier (d : D.t) : tfunc =
  let cpi = cpi_of tier in
  let inst = env.instance in
  let heap = inst.Instance.heap in
  let cnt = env.counters in
  let fcnt = cnt.Counters.f in
  (* The semantics of one instruction, exactly as the decoded engine's
     match arms execute them, continuation-passing into [next].  No
     accounting here — the caller bakes the charging protocol around it. *)
  let sem_only (di : D.dinstr) (next : code) : code =
    let v = di.D.id in
    let el = di.D.elided in
    match di.D.kind with
    | L.Nop | L.Phi _ -> fun st -> next st
    | L.Param r ->
      if r = 0 then
        fun st ->
          set st.values v st.this;
          next st
      else
        fun st ->
          set st.values v
            (if r - 1 < st.nargs then get st.argv (r - 1) else Value.Undef);
          next st
    | L.Const c ->
      fun st ->
        set st.values v c;
        next st
    | L.Iadd (a, b) ->
      fun st ->
        set st.values v
          (int_result env st.overflowed v
             (as_int (get st.values a) + as_int (get st.values b)));
        next st
    | L.Isub (a, b) ->
      fun st ->
        set st.values v
          (int_result env st.overflowed v
             (as_int (get st.values a) - as_int (get st.values b)));
        next st
    | L.Iadd_wrap (a, b) ->
      fun st ->
        set st.values v
          (int_ (wrap_int32 (as_int (get st.values a) + as_int (get st.values b))));
        next st
    | L.Isub_wrap (a, b) ->
      fun st ->
        set st.values v
          (int_ (wrap_int32 (as_int (get st.values a) - as_int (get st.values b))));
        next st
    | L.Imul (a, b) ->
      fun st ->
        set st.values v
          (int_result env st.overflowed v
             (as_int (get st.values a) * as_int (get st.values b)));
        next st
    | L.Ineg a ->
      fun st ->
        let x = as_int (get st.values a) in
        (* -0 and -int32_min are not int32-representable results. *)
        if x = 0 || x = Value.int32_min then begin
          set st.overflowed v true;
          (match env.tx with
          | Some tx when env.sof_enabled -> tx.Htm.sof <- true
          | _ -> ());
          set st.values v (int_ (wrap_int32 (-x)))
        end
        else set st.values v (int_ (-x));
        next st
    | L.Fadd (a, b) ->
      fun st ->
        set st.values v
          (number (as_num (get st.values a) +. as_num (get st.values b)));
        next st
    | L.Fsub (a, b) ->
      fun st ->
        set st.values v
          (number (as_num (get st.values a) -. as_num (get st.values b)));
        next st
    | L.Fmul (a, b) ->
      fun st ->
        set st.values v
          (number (as_num (get st.values a) *. as_num (get st.values b)));
        next st
    | L.Fdiv (a, b) ->
      fun st ->
        set st.values v
          (number (as_num (get st.values a) /. as_num (get st.values b)));
        next st
    | L.Fmod (a, b) ->
      fun st ->
        set st.values v
          (number (Float.rem (as_num (get st.values a)) (as_num (get st.values b))));
        next st
    | L.Fneg a ->
      fun st ->
        set st.values v (number (-.as_num (get st.values a)));
        next st
    | L.Band (a, b) ->
      fun st ->
        set st.values v
          (int_ (wrap_int32 (as_int (get st.values a) land as_int (get st.values b))));
        next st
    | L.Bor (a, b) ->
      fun st ->
        set st.values v
          (int_ (wrap_int32 (as_int (get st.values a) lor as_int (get st.values b))));
        next st
    | L.Bxor (a, b) ->
      fun st ->
        set st.values v
          (int_ (wrap_int32 (as_int (get st.values a) lxor as_int (get st.values b))));
        next st
    | L.Bnot a ->
      fun st ->
        set st.values v (Value.Int (wrap_int32 (lnot (as_int (get st.values a)))));
        next st
    | L.Shl (a, b) ->
      fun st ->
        set st.values v
          (int_
             (wrap_int32 (as_int (get st.values a) lsl (as_int (get st.values b) land 31))));
        next st
    | L.Shr (a, b) ->
      fun st ->
        set st.values v
          (int_ (as_int (get st.values a) asr (as_int (get st.values b) land 31)));
        next st
    | L.Ushr (a, b) ->
      fun st ->
        set st.values v (Ops.js_ushr (get st.values a) (get st.values b));
        next st
    (* One closure per comparator: the dispatch on [c] happens at compile
       time and the float compare stays local (unboxed) in each body. *)
    | L.Cmp (L.Ceq, a, b) ->
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) = as_num (get st.values b)));
        next st
    | L.Cmp (L.Cne, a, b) ->
      (* JS: NaN != anything is true *)
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) <> as_num (get st.values b)));
        next st
    | L.Cmp (L.Clt, a, b) ->
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) < as_num (get st.values b)));
        next st
    | L.Cmp (L.Cle, a, b) ->
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) <= as_num (get st.values b)));
        next st
    | L.Cmp (L.Cgt, a, b) ->
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) > as_num (get st.values b)));
        next st
    | L.Cmp (L.Cge, a, b) ->
      fun st ->
        set st.values v
          (bool_ (as_num (get st.values a) >= as_num (get st.values b)));
        next st
    | L.Not a ->
      fun st ->
        set st.values v (bool_ (not (Value.truthy (get st.values a))));
        next st
    | L.Load_slot (o, slot) ->
      fun st ->
        (match get st.values o with
        | Value.Obj obj when slot < Array.length obj.Value.slots ->
          set st.values v (Heap.load_slot heap obj slot)
        | _ -> set st.values v Value.Undef);
        next st
    | L.Store_slot (o, slot, x) ->
      fun st ->
        (match get st.values o with
        | Value.Obj obj when slot < Array.length obj.Value.slots ->
          Heap.store_slot heap obj slot (get st.values x)
        | _ -> ());
        next st
    | L.Store_transition (o, name, slot, x) ->
      fun st ->
        (match get st.values o with
        | Value.Obj obj ->
          (* The guarding shape check ran just before; resolve the
             (memoized, site-cached) transition and install shape + value. *)
          let new_shape = ic_transition env heap di.D.ic obj name in
          if new_shape.Shape.prop_count - 1 = slot then
            Heap.transition_store heap obj new_shape slot (get st.values x)
          else
            (* Shape drifted (possible only in a doomed transaction). *)
            Heap.set_prop heap obj name (get st.values x)
        | _ -> ());
        next st
    | L.Load_elem (a, i') ->
      fun st ->
        (match get st.values a with
        | Value.Arr arr ->
          set st.values v (Heap.load_elem heap arr (as_int (get st.values i')))
        | _ -> set st.values v Value.Undef);
        next st
    | L.Store_elem (a, i', x) ->
      fun st ->
        (match get st.values a with
        | Value.Arr arr ->
          Heap.store_elem heap arr (as_int (get st.values i')) (get st.values x)
        | _ -> ());
        next st
    | L.Load_length a ->
      fun st ->
        (match get st.values a with
        | Value.Arr arr ->
          Heap.note_load heap arr.Value.aaddr 8;
          set st.values v (int_ arr.Value.alen)
        | _ -> set st.values v (Value.Int 0));
        next st
    | L.Str_length a ->
      fun st ->
        (match get st.values a with
        | Value.Str s -> set st.values v (int_ (String.length s.Value.sdata))
        | _ -> set st.values v (Value.Int 0));
        next st
    | L.Load_char_code (s, i') ->
      fun st ->
        (match get st.values s with
        | Value.Str str ->
          set st.values v
            (int_ (Ops.string_char_code heap str (as_int (get st.values i'))))
        | _ -> set st.values v (Value.Int 0));
        next st
    | L.Load_global g ->
      fun st ->
        set st.values v inst.Instance.globals.(g);
        next st
    | L.Store_global (g, x) ->
      fun st ->
        inst.Instance.globals.(g) <- get st.values x;
        next st
    (* Elided checks (NoMap_BC) guard exactly as charged ones do, but
       model zero hardware instructions: no check-category count, no
       cache-visible load of the metadata they test. *)
    | L.Check_int (a, e) ->
      fun st ->
        (match get st.values a with
        | Value.Int _ ->
          if not el then bump_check cnt ci_type;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Type);
        next st
    | L.Check_number (a, e) ->
      fun st ->
        (match get st.values a with
        | Value.Int _ | Value.Num _ ->
          if not el then bump_check cnt ci_type;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Type);
        next st
    | L.Check_string (a, e) ->
      fun st ->
        (match get st.values a with
        | Value.Str _ ->
          if not el then bump_check cnt ci_type;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Type);
        next st
    | L.Check_array (a, e) ->
      fun st ->
        (match get st.values a with
        | Value.Arr _ ->
          if not el then bump_check cnt ci_type;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Type);
        next st
    | L.Check_shape (a, shape_id, e) ->
      fun st ->
        (match get st.values a with
        | Value.Obj o when o.Value.shape.Shape.id = shape_id ->
          if not el then begin
            Heap.note_load heap o.Value.oaddr 8;
            bump_check cnt ci_property
          end;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Property);
        next st
    | L.Check_fun_eq (a, fid, e) ->
      fun st ->
        (match get st.values a with
        | Value.Fun f when f = fid ->
          if not el then bump_check cnt ci_path;
          set st.values v (get st.values a)
        | _ -> check_fail env st.values e L.Path);
        next st
    | L.Check_bounds (a, i', e) ->
      fun st ->
        (let idx = as_int (get st.values i') in
         match get st.values a with
         | Value.Arr arr when idx >= 0 && idx < arr.Value.alen ->
           if not el then begin
             Heap.note_load heap arr.Value.aaddr 8;
             bump_check cnt ci_bounds
           end;
           set st.values v (int_ idx)
         | _ -> check_fail env st.values e L.Bounds);
        next st
    | L.Check_str_bounds (s, i', e) ->
      fun st ->
        (let idx = as_int (get st.values i') in
         match get st.values s with
         | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
           if not el then bump_check cnt ci_bounds;
           set st.values v (int_ idx)
         | _ -> check_fail env st.values e L.Bounds);
        next st
    | L.Check_not_hole (a, i', e) ->
      fun st ->
        (let idx = as_int (get st.values i') in
         match get st.values a with
         | Value.Arr arr
           when idx >= 0
                && idx < Array.length arr.Value.elems
                && Heap.load_elem heap arr idx <> Value.Hole ->
           if not el then bump_check cnt ci_hole;
           set st.values v (int_ idx)
         | _ -> check_fail env st.values e L.Hole);
        next st
    | L.Check_overflow (a, e) ->
      fun st ->
        if get st.overflowed a then check_fail env st.values e L.Overflow
        else begin
          if not el then bump_check cnt ci_overflow;
          set st.values v (get st.values a)
        end;
        next st
    | L.Check_cond (a, expected, e) ->
      fun st ->
        if Value.truthy (get st.values a) = expected then begin
          if not el then bump_check cnt ci_path;
          set st.values v (get st.values a)
        end
        else check_fail env st.values e L.Path;
        next st
    | L.Call_func (fid, _) ->
      let args = di.D.args in
      fun st ->
        set st.values v (env.call ~fid ~this:Value.Undef ~args:(arg_values st.values args));
        next st
    | L.Call_method (fid, thisv, _) ->
      let args = di.D.args in
      fun st ->
        set st.values v
          (env.call ~fid ~this:(get st.values thisv) ~args:(arg_values st.values args));
        next st
    | L.Ctor_call (fid, _) ->
      let args = di.D.args in
      fun st ->
        let obj = Value.Obj (Heap.alloc_object heap) in
        let r = env.call ~fid ~this:obj ~args:(arg_values st.values args) in
        set st.values v (match r with Value.Undef -> obj | x -> x);
        next st
    | L.Call_runtime (rt, recv, _) ->
      let args = di.D.args in
      let ic = di.D.ic in
      fun st ->
        set st.values v (exec_runtime env ~ic rt (get st.values recv) args st.values);
        next st
    | L.Intrinsic (intr, _) ->
      let args = di.D.args in
      let ftl_c, rt_c = intrinsic_cost intr in
      fun st ->
        if not el then begin
          charge_ftl env ~frame:st.frame ~tier ftl_c;
          charge_runtime env rt_c
        end;
        set st.values v (eval_intrinsic heap intr Value.Undef args st.values);
        next st
    | L.Alloc_object ->
      fun st ->
        set st.values v (Value.Obj (Heap.alloc_object heap));
        next st
    | L.Alloc_array len ->
      fun st ->
        let n = as_int (get st.values len) in
        if n < 0 || n > 1 lsl 24 then begin
          match env.tx with
          | Some _ -> raise (Htm.Abort Htm.Watchdog)
          | None -> raise (Nomap_interp.Interp.Runtime_error "bad array length")
        end;
        set st.values v (Value.Arr (Heap.alloc_array heap n));
        next st
    | L.Tx_begin smp ->
      fun st ->
        exec_tx_begin env st.values ~frame:st.frame smp;
        next st
    | L.Tx_end ->
      fun st ->
        exec_tx_end env;
        next st
  in
  (* A solo closure: the reference engine's per-instruction protocol with
     the free / zero-cost / charged decision and the CPI multiply resolved
     at compile time. *)
  let solo (di : D.dinstr) (next : code) : code =
    let free = di.D.elided || (di.D.is_tx_marker && env.htm_mode = Htm.Ghost) in
    let cost = di.D.cost in
    let delta = float_of_int cost *. cpi in
    let sem = sem_only di next in
    if free then
      fun st ->
        burn inst 1;
        sem st
    else if cost = 0 then
      fun st ->
        burn inst 1;
        tx_tick env;
        sem st
    else
      fun st ->
        burn inst 1;
        tx_tick env;
        bump_instrs cnt (category_ix env st.frame) cost;
        fcnt.Counters.cycles <- fcnt.Counters.cycles +. delta;
        if in_region env then fcnt.Counters.tx_cycles <- fcnt.Counters.tx_cycles +. delta;
        sem st
  in
  (* Segment membership: everything except the instructions that change
     the category/in-region state or re-enter the VM (whose charge
     protocols differ and whose callees run arbitrary code). *)
  let seg_able (di : D.dinstr) =
    match di.D.kind with
    | L.Call_func _ | L.Call_method _ | L.Ctor_call _ | L.Call_runtime _ | L.Intrinsic _
    | L.Tx_begin _ | L.Tx_end ->
      false
    | _ -> true
  in
  let unit_code : code = fun _ -> () in
  (* Check+consumer fusion inside a segment: when the pattern matches,
     returns the fused *semantics* for both instructions (array/index kept
     in locals instead of re-read and re-matched); [st.due] advances past
     each half exactly when the reference engine would have charged it, so
     reconciliation and abort points are unchanged.  Both halves
     non-elided only: an elided check charges nothing and fires no hook,
     so the straight-line chain is already free. *)
  let fuse_pair (run : D.dinstr array) k : ((code -> code) option[@warning "-26"]) =
    if k + 1 >= Array.length run then None
    else
      let c = get run k and u = get run (k + 1) in
      if c.D.elided || u.D.elided then None
      else
        let vc = c.D.id and vu = u.D.id in
        let due1 = k + 1 and due2 = k + 2 in
        match (c.D.kind, u.D.kind) with
        | L.Check_bounds (a, i', e), L.Load_elem (a2, i2) when a2 = a && i2 = c.D.id ->
          Some
            (fun next_sems st ->
              st.due <- due1;
              let idx = as_int (get st.values i') in
              (match get st.values a with
              | Value.Arr arr when idx >= 0 && idx < arr.Value.alen ->
                Heap.note_load heap arr.Value.aaddr 8;
                bump_check cnt ci_bounds;
                set st.values vc (int_ idx);
                st.due <- due2;
                set st.values vu (Heap.load_elem heap arr idx)
              | _ -> check_fail env st.values e L.Bounds);
              next_sems st)
        | L.Check_bounds (a, i', e), L.Store_elem (a2, i2, x) when a2 = a && i2 = c.D.id
          ->
          Some
            (fun next_sems st ->
              st.due <- due1;
              let idx = as_int (get st.values i') in
              (match get st.values a with
              | Value.Arr arr when idx >= 0 && idx < arr.Value.alen ->
                Heap.note_load heap arr.Value.aaddr 8;
                bump_check cnt ci_bounds;
                set st.values vc (int_ idx);
                st.due <- due2;
                Heap.store_elem heap arr idx (get st.values x)
              | _ -> check_fail env st.values e L.Bounds);
              next_sems st)
        | L.Check_str_bounds (s, i', e), L.Load_char_code (s2, i2)
          when s2 = s && i2 = c.D.id ->
          Some
            (fun next_sems st ->
              st.due <- due1;
              let idx = as_int (get st.values i') in
              (match get st.values s with
              | Value.Str str when idx >= 0 && idx < String.length str.Value.sdata ->
                bump_check cnt ci_bounds;
                set st.values vc (int_ idx);
                st.due <- due2;
                set st.values vu (int_ (Ops.string_char_code heap str idx))
              | _ -> check_fail env st.values e L.Bounds);
              next_sems st)
        | _ -> None
  in
  (* One deferred-accounting segment over [run] (see the module doc):
     burn/tick batched up front, semantics chained, instr/cycle charges
     applied once at the end, with an exception guard reconciling the
     exact charged prefix if an instruction deopts/aborts mid-segment and
     an exact per-instruction fallback when the batched tick could cross
     the transaction watchdog.

     A segment that runs to the end of the block additionally absorbs the
     terminator's 1-instruction charge into its batched apply ([fold_term]):
     terminators charge but never burn fuel or tick the transaction, the
     category/in-tx flag cannot change between the segment's last
     instruction and the terminator (no calls or tx markers in between),
     and appending the terminator's cycle delta last preserves the
     reference engine's accumulation order.  The watchdog fallback and any
     mid-segment raise never reach the terminator, so those paths keep the
     self-charging [term]. *)
  let rec compile_seq (body : D.dinstr array) i ~(term : code) ~(term_free : code) :
      code =
    if i >= Array.length body then term
    else if not (seg_able (get body i)) then
      solo (get body i) (compile_seq body (i + 1) ~term ~term_free)
    else begin
      let n_body = Array.length body in
      let j = ref (i + 1) in
      while !j < n_body && seg_able (get body !j) do incr j done;
      let run = Array.sub body i (!j - i) in
      if !j >= n_body && Array.length run > 1 then
        compile_segment run ~next:term_free ~slow_next:term ~fold_term:true
      else begin
        let rest = compile_seq body !j ~term ~term_free in
        compile_segment run ~next:rest ~slow_next:rest ~fold_term:false
      end
    end
  and compile_segment (run : D.dinstr array) ~(next : code) ~(slow_next : code)
      ~fold_term : code =
    let n = Array.length run in
    if n = 1 then solo (get run 0) slow_next
    else begin
      let n_tick = ref 0 and total_cost = ref 0 in
      Array.iter
        (fun di ->
          if not di.D.elided then begin
            incr n_tick;
            total_cost := !total_cost + di.D.cost
          end)
        run;
      let n_tick = !n_tick and total_cost = !total_cost + if fold_term then 1 else 0 in
      let deltas =
        run |> Array.to_list
        |> List.filter_map (fun di ->
               if (not di.D.elided) && di.D.cost > 0 then
                 Some (float_of_int di.D.cost *. cpi)
               else None)
        |> (fun ds -> if fold_term then ds @ [ cpi ] else ds)
        |> Array.of_list
      in
      let n_deltas = Array.length deltas in
      (* cost_prefix.(k) / dcount_prefix.(k): summed cost and cycle-delta
         count charged by the reference engine after the segment's first
         [k] instructions — what reconciliation owes at [st.due = k]. *)
      let cost_prefix = Array.make (n + 1) 0 in
      let dcount_prefix = Array.make (n + 1) 0 in
      for k = 0 to n - 1 do
        let di = get run k in
        let c = if di.D.elided then 0 else di.D.cost in
        cost_prefix.(k + 1) <- cost_prefix.(k) + c;
        dcount_prefix.(k + 1) <- (dcount_prefix.(k) + if c > 0 then 1 else 0)
      done;
      let any_raiser = Array.exists (fun di -> not di.D.pure) run in
      (* The semantic chain: raisers record their due prefix first; pure
         instructions cannot raise and skip the bookkeeping. *)
      let rec build k : code =
        if k >= n then unit_code
        else
          match fuse_pair run k with
          | Some mk -> mk (build (k + 2))
          | None ->
            let di = get run k in
            let s = sem_only di (build (k + 1)) in
            if di.D.pure then s
            else begin
              let due = k + 1 in
              fun st ->
                st.due <- due;
                s st
            end
      in
      let sems = build 0 in
      let slow = Array.fold_right solo run slow_next in
      let apply st =
        if total_cost > 0 then begin
          bump_instrs cnt (category_ix env st.frame) total_cost;
          if in_region env then
            for x = 0 to n_deltas - 1 do
              let c = fget deltas x in
              fcnt.Counters.cycles <- fcnt.Counters.cycles +. c;
              fcnt.Counters.tx_cycles <- fcnt.Counters.tx_cycles +. c
            done
          else
            for x = 0 to n_deltas - 1 do
              fcnt.Counters.cycles <- fcnt.Counters.cycles +. fget deltas x
            done
        end
      in
      let reconcile st =
        let due = st.due in
        let c = get cost_prefix due in
        if c > 0 then begin
          bump_instrs cnt (category_ix env st.frame) c;
          let dk = get dcount_prefix due in
          if in_region env then
            for x = 0 to dk - 1 do
              let cd = fget deltas x in
              fcnt.Counters.cycles <- fcnt.Counters.cycles +. cd;
              fcnt.Counters.tx_cycles <- fcnt.Counters.tx_cycles +. cd
            done
          else
            for x = 0 to dk - 1 do
              fcnt.Counters.cycles <- fcnt.Counters.cycles +. fget deltas x
            done
        end
      in
      if not any_raiser then
        fun st ->
          match env.tx with
          | Some tx when n_tick > 0 ->
            if tx.Htm.instr_count + n_tick > env.tx_watchdog then slow st
            else begin
              burn inst n;
              tx.Htm.instr_count <- tx.Htm.instr_count + n_tick;
              sems st;
              apply st;
              next st
            end
          | _ ->
            burn inst n;
            sems st;
            apply st;
            next st
      else
        fun st ->
          match env.tx with
          | Some tx when n_tick > 0 ->
            if tx.Htm.instr_count + n_tick > env.tx_watchdog then slow st
            else begin
              burn inst n;
              tx.Htm.instr_count <- tx.Htm.instr_count + n_tick;
              st.due <- 0;
              (try sems st
               with e ->
                 reconcile st;
                 raise e);
              apply st;
              next st
            end
          | _ ->
            burn inst n;
            st.due <- 0;
            (try sems st
             with e ->
               reconcile st;
               raise e);
            apply st;
            next st
    end
  in
  (* Terminator effect only — the 1-instruction charge is folded into a
     preceding segment's apply when possible, or wrapped on by the caller. *)
  let compile_term bid (t : L.terminator) : code =
    match t with
    | L.Jump tgt ->
      fun st ->
        st.prev_block <- bid;
        st.next_block <- tgt
    | L.Br (cv, bt, bf) ->
      fun st ->
        st.prev_block <- bid;
        st.next_block <- (if Value.truthy (get st.values cv) then bt else bf)
    | L.Ret (Some rv) ->
      fun st ->
        st.result <- get st.values rv;
        st.next_block <- -1
    | L.Ret None -> fun st -> st.next_block <- -1
    | L.Unreachable ->
      fun _ -> raise (Nomap_interp.Interp.Runtime_error "reached unreachable block")
  in
  (* Phis: the pre-resolved copy table for the incoming edge, applied as a
     parallel assignment (read phase, then write phase) before the body —
     same scratch-buffer discipline as the decoded engine. *)
  let with_phis (edges : D.phi_edge array) (body : code) : code =
    let scratch = d.D.scratch in
    let n_edges = Array.length edges in
    (* The edge scan is a plain loop: a local [let rec] capturing the
       incoming block would be a fresh closure on every block entry. *)
    fun st ->
      let prev = st.prev_block in
      let ei = ref (-1) in
      let i = ref 0 in
      while !ei < 0 && !i < n_edges do
        if (get edges !i).D.pred = prev then ei := !i else incr i
      done;
      let ei = !ei in
      if ei >= 0 then begin
        let e = get edges ei in
        let dsts = e.D.dsts and srcs = e.D.srcs in
        let np = Array.length dsts in
        for i = 0 to np - 1 do
          set scratch i (get st.values (get srcs i))
        done;
        for i = 0 to np - 1 do
          set st.values (get dsts i) (get scratch i)
        done
      end;
      body st
  in
  let t_blocks =
    Array.mapi
      (fun bid (b : D.dblock) ->
        let term_free = compile_term bid b.D.dterm in
        let term st =
          charge_ftl env ~frame:st.frame ~tier 1;
          term_free st
        in
        let body = compile_seq b.D.body 0 ~term ~term_free in
        if Array.length b.D.phi_edges = 0 then body else with_phis b.D.phi_edges body)
      d.D.dblocks
  in
  { t_entry = d.D.entry; t_blocks; t_nvalues = d.D.nvalues; t_tier = tier; t_pool = [] }

(** The threaded code for [c], compiled on first execution and cached on
    the compiled record. *)
let threaded env (c : Specialize.compiled) ~tier : tfunc =
  match c.Specialize.engine_code with
  | Some (Threaded_code tf) when tf.t_tier = tier -> tf
  | _ ->
    let tf = compile_func env ~tier (decoded c) in
    c.Specialize.engine_code <- Some (Threaded_code tf);
    tf

let exec_func env (c : Specialize.compiled) ~tier ~this ~args : Value.t =
  let tf = threaded env c ~tier in
  let frame = enter_call env ~tier in
  let argv = Array.of_list args in
  let st =
    match tf.t_pool with
    | st :: rest ->
      (* Pooled frames were scrubbed on release, so this is exactly the
         fresh-frame state (values Undef, overflowed false). *)
      tf.t_pool <- rest;
      st.this <- this;
      st.argv <- argv;
      st.nargs <- Array.length argv;
      st.frame <- frame;
      st.prev_block <- -1;
      st.next_block <- tf.t_entry;
      st.result <- Value.Undef;
      st.due <- 0;
      st
    | [] ->
      let n = max 1 tf.t_nvalues in
      {
        values = Array.make n Value.Undef;
        overflowed = Array.make n false;
        this;
        argv;
        nargs = Array.length argv;
        frame;
        prev_block = -1;
        next_block = tf.t_entry;
        result = Value.Undef;
        due = 0;
      }
  in
  let blocks = tf.t_blocks in
  let run () =
    while st.next_block >= 0 do
      (get blocks st.next_block) st
    done;
    let r = st.result in
    (* Normal return: scrub and park the frame.  A raise (deopt, abort,
       runtime error, out-of-fuel) skips this and the frame is dropped. *)
    Array.fill st.values 0 (Array.length st.values) Value.Undef;
    Array.fill st.overflowed 0 (Array.length st.overflowed) false;
    st.this <- Value.Undef;
    st.argv <- [||];
    st.result <- Value.Undef;
    tf.t_pool <- st :: tf.t_pool;
    r
  in
  run_with_exits env ~fid:c.Specialize.lir.L.fid ~frame run
