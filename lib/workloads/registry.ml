(** Benchmark registry: ids, suite membership, AvgS membership (paper Table
    III), compiled programs, and expected checksums established by the
    reference interpreter. *)

type suite = Sunspider | Kraken | Shootout

let suite_name = function
  | Sunspider -> "SunSpider"
  | Kraken -> "Kraken"
  | Shootout -> "Shootout"

type benchmark = {
  id : string;  (** e.g. "S01" *)
  name : string;  (** e.g. "3d-cube" *)
  suite : suite;
  source : string;
  in_avg_s : bool;
}

let make suite prefix avg_s i (name, source) =
  {
    id = Printf.sprintf "%s%02d" prefix (i + 1);
    name;
    suite;
    source;
    in_avg_s = List.mem (i + 1) avg_s;
  }

let sunspider =
  List.mapi (make Sunspider "S" Sunspider.avg_s_members) Sunspider.all

let kraken = List.mapi (make Kraken "K" Kraken.avg_s_members) Kraken.all

let shootout =
  List.mapi (fun i (name, source) ->
      { id = Printf.sprintf "SH%02d" (i + 1); name; suite = Shootout; source; in_avg_s = true })
    Shootout.all

let all = sunspider @ kraken @ shootout

let by_id id = List.find_opt (fun b -> b.id = id) all
let by_name name = List.find_opt (fun b -> b.name = name) all

let of_suite = function
  | Sunspider -> sunspider
  | Kraken -> kraken
  | Shootout -> shootout

(** Compile a benchmark's source (memoized).  The cache is an
    [Artifact_cache] — the same mutex-guarded LRU the execution daemon
    shares across domains — sized above the benchmark count so registry
    entries are never evicted.  Its exactly-once contract (lock held
    across the compile) is what lets parallel scheduler workers all read
    the physically identical program value. *)
let compiled_cache : (string, Nomap_bytecode.Opcode.program) Nomap_server.Artifact_cache.t =
  Nomap_server.Artifact_cache.create ~capacity:128 ()

let compile b =
  snd
    (Nomap_server.Artifact_cache.find_or_add compiled_cache b.id (fun () ->
         Nomap_bytecode.Compile.compile_source ~name:b.name b.source))

(** Reference result: run [benchmark()] once under the plain interpreter. *)
let reference_result b =
  let prog = compile b in
  let inst = Nomap_interp.Instance.create ~fuel:500_000_000 prog in
  let rec env =
    {
      Nomap_interp.Interp.instance = inst;
      mode = Nomap_interp.Interp.Interp_tier;
      profile = None;
      charge = (fun _ -> ());
      call =
        (fun ~fid ~this ~args -> Nomap_interp.Interp.call_function env ~fid ~this ~args);
    }
  in
  ignore
    (Nomap_interp.Interp.call_function env ~fid:prog.Nomap_bytecode.Opcode.main_fid
       ~this:Nomap_runtime.Value.Undef ~args:[]);
  match Nomap_bytecode.Opcode.func_by_name prog "benchmark" with
  | Some f ->
    Nomap_runtime.Value.to_js_string
      (Nomap_interp.Interp.call_function env ~fid:f.Nomap_bytecode.Opcode.fid
         ~this:Nomap_runtime.Value.Undef ~args:[])
  | None -> invalid_arg (b.id ^ " has no benchmark() function")
